//! Engine behaviour tests driven by scripted policies: verify that the
//! engine actually enforces the actions policies request.

use baat_server::DvfsLevel;
use baat_sim::{Action, ControlCtx, Policy, RejectReason, SimConfig, Simulation, SystemView};
use baat_solar::Weather;
use baat_units::{SimDuration, Soc};
use baat_workload::WorkloadKind;

fn config(weather: Weather, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .dt(SimDuration::from_secs(60))
        .sample_every(10)
        .seed(seed);
    b.build().expect("config is valid")
}

/// A policy that pins every battery's SoC floor and throttles one node.
struct Scripted {
    floor: Soc,
    issued: bool,
}

impl Policy for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn control(&mut self, view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        if self.issued {
            return Vec::new();
        }
        self.issued = true;
        let mut actions: Vec<Action> = view
            .nodes
            .iter()
            .map(|n| Action::SetSocFloor {
                node: n.node,
                floor: self.floor,
            })
            .collect();
        actions.push(Action::SetDvfs {
            node: 0,
            level: DvfsLevel::P3,
        });
        // An out-of-range action must be rejected, not crash.
        actions.push(Action::SetDvfs {
            node: 999,
            level: DvfsLevel::P1,
        });
        actions
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (0..view.nodes.len()).collect()
    }
}

#[test]
fn soc_floors_are_enforced_by_the_engine() {
    // A 55 % floor on a rainy day: batteries must never be discharged
    // below it (self-discharge aside).
    let mut policy = Scripted {
        floor: Soc::saturating(0.55),
        issued: false,
    };
    let report = Simulation::new(config(Weather::Rainy, 5))
        .expect("config valid")
        .run(&mut policy)
        .expect("run succeeds");
    for row in report.recorder.rows() {
        for &soc in &row.soc {
            assert!(soc >= 0.53, "floor violated: soc {soc} at {}", row.at);
        }
    }
    // The floor starves the servers instead: demand goes unserved.
    assert!(
        report.unserved_energy.as_f64() > 0.0,
        "a high floor on a rainy day must shed load"
    );
}

#[test]
fn rejected_actions_are_logged_not_fatal() {
    use baat_sim::Event;
    let mut policy = Scripted {
        floor: Soc::saturating(0.2),
        issued: false,
    };
    let report = Simulation::new(config(Weather::Sunny, 6))
        .expect("config valid")
        .run(&mut policy)
        .expect("run succeeds");
    let rejected: Vec<RejectReason> = report
        .events
        .iter()
        .filter_map(|e| match &e.event {
            Event::Action { outcome } => outcome.reject_reason(),
            _ => None,
        })
        .collect();
    assert!(
        rejected.contains(&RejectReason::UnknownNode),
        "the node-999 DVFS request must be rejected as unknown-node, got {rejected:?}"
    );
    assert!(
        report
            .events
            .count(|e| matches!(e, Event::SocFloorChanged { .. }))
            >= 6,
        "floor changes must be logged per node"
    );
    assert!(
        report
            .events
            .count(|e| matches!(e, Event::DvfsChanged { node: 0, .. }))
            >= 1
    );
}

/// A policy that migrates the first VM it sees, once.
struct MigrateOnce {
    done: bool,
}

impl Policy for MigrateOnce {
    fn name(&self) -> &'static str {
        "migrate-once"
    }

    fn control(&mut self, view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        if self.done {
            return Vec::new();
        }
        for node in &view.nodes {
            for vm in &node.vms {
                let request = vm.kind.resource_request();
                let target = view.nodes.iter().find(|t| {
                    t.node != node.node
                        && t.online
                        && t.free_resources.0 >= request.0
                        && t.free_resources.1 >= request.1
                });
                if let Some(target) = target {
                    self.done = true;
                    return vec![Action::Migrate {
                        vm: vm.id,
                        target: target.node,
                    }];
                }
            }
        }
        Vec::new()
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (0..view.nodes.len()).collect()
    }
}

#[test]
fn policy_migrations_flow_through_the_cluster() {
    let mut policy = MigrateOnce { done: false };
    let report = Simulation::new(config(Weather::Sunny, 9))
        .expect("config valid")
        .run(&mut policy)
        .expect("run succeeds");
    assert_eq!(report.migrations, 1, "exactly one migration was requested");
}

/// A policy that requests an impossible migration and records whether the
/// engine fed the failure back on the next control interval.
struct FeedbackProbe {
    requested: bool,
    saw_rejection: bool,
}

impl Policy for FeedbackProbe {
    fn name(&self) -> &'static str {
        "feedback-probe"
    }

    fn control(&mut self, _view: &SystemView, ctx: &ControlCtx<'_>) -> Vec<Action> {
        if self.requested {
            for vm in ctx.rejected_migrations() {
                assert_eq!(vm, baat_workload::VmId(u64::MAX));
                self.saw_rejection = true;
            }
            for outcome in ctx.last_outcomes {
                assert_eq!(outcome.reject_reason(), Some(RejectReason::UnknownVm));
            }
            return Vec::new();
        }
        self.requested = true;
        vec![Action::Migrate {
            vm: baat_workload::VmId(u64::MAX),
            target: 0,
        }]
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (0..view.nodes.len()).collect()
    }
}

#[test]
fn rejected_migrations_are_fed_back_to_the_policy() {
    let mut policy = FeedbackProbe {
        requested: false,
        saw_rejection: false,
    };
    Simulation::new(config(Weather::Sunny, 17))
        .expect("config valid")
        .run(&mut policy)
        .expect("run succeeds");
    assert!(
        policy.saw_rejection,
        "the next ControlCtx must surface the rejected migration"
    );
}

#[test]
fn pending_jobs_carry_over_between_days() {
    use baat_sim::{Event, RoundRobinPolicy};
    // Overload a tiny cluster so the queue cannot drain in one day.
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Sunny, Weather::Sunny])
        .nodes(2)
        .dt(SimDuration::from_secs(60))
        .sample_every(10)
        .workload_mix(2, 60)
        .seed(8);
    let report = Simulation::new(b.build().expect("config valid"))
        .expect("sim builds")
        .run(&mut RoundRobinPolicy::new())
        .expect("run succeeds");
    // Day 2 reports the carried-over queue.
    assert!(
        report
            .events
            .count(|e| matches!(e, Event::PlacementFailed { .. }))
            > 0,
        "an overloaded 2-node cluster must carry jobs over"
    );
    assert!(report.completed_jobs > 0);
}

#[test]
fn grid_charging_happens_only_at_night() {
    use baat_sim::RoundRobinPolicy;
    let report = Simulation::new(config(Weather::Sunny, 11))
        .expect("config valid")
        .run(&mut RoundRobinPolicy::new())
        .expect("run succeeds");
    // Overnight utility charging replaces what the day drained; with
    // batteries starting full it is bounded by a day's worth of cycling.
    assert!(report.grid_charge_energy.as_f64() >= 0.0);
    assert!(
        report.grid_charge_energy.as_kwh() < 12.0,
        "grid draw implausibly large: {}",
        report.grid_charge_energy
    );
}

fn one_fault_config(kind: baat_sim::FaultKind, start_s: u64, minutes: u64) -> SimConfig {
    use baat_sim::{FaultPlan, FaultSpec};
    use baat_units::SimInstant;
    let mut plan = FaultPlan::new();
    plan.push(FaultSpec {
        kind,
        start: SimInstant::from_secs(start_s),
        duration: SimDuration::from_minutes(minutes),
    });
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Sunny])
        .dt(SimDuration::from_secs(60))
        .sample_every(10)
        .seed(21)
        .faults(plan);
    b.build().expect("config is valid")
}

#[test]
fn degraded_mode_tracks_the_staleness_bound() {
    use baat_sim::{Event, FaultKind, RoundRobinPolicy, DEFAULT_STALENESS_LIMIT};
    // Bank 0's sensor drops out from 10:00 for 20 minutes. With the
    // default 5-minute staleness bound, node 0 must enter degraded mode
    // one bound past its last fresh sample and leave within one control
    // interval of telemetry returning.
    let fault_start = 10 * 3600;
    let fault_end = fault_start + 20 * 60;
    let report = Simulation::new(one_fault_config(
        FaultKind::SensorDropout { bank: 0 },
        fault_start,
        20,
    ))
    .expect("config valid")
    .run(&mut RoundRobinPolicy::new())
    .expect("run succeeds");

    let transitions: Vec<(u64, bool)> = report
        .events
        .iter()
        .filter_map(|e| match e.event {
            Event::DegradedMode { node: 0, active } => Some((e.at.as_secs(), active)),
            _ => None,
        })
        .collect();
    let [(entered_at, true), (exited_at, false)] = transitions[..] else {
        panic!("expected exactly one enter/exit pair, got {transitions:?}");
    };
    let limit = DEFAULT_STALENESS_LIMIT.as_secs();
    assert!(
        (fault_start + limit..=fault_start + limit + 120).contains(&entered_at),
        "entered at {entered_at}, expected ~{}",
        fault_start + limit
    );
    assert!(
        (fault_end..=fault_end + 120).contains(&exited_at),
        "exited at {exited_at}, expected ~{fault_end}"
    );

    // While degraded, the fallback scheme must have raised the floor to
    // 0.5 and throttled to P4 — each exactly once: once the node is in
    // the conservative state, nothing more is issued.
    let fallback_floors = report
        .events
        .count(|e| matches!(e, Event::SocFloorChanged { node: 0, floor } if floor.value() == 0.5));
    assert_eq!(fallback_floors, 1, "floor raised exactly once");
    let throttles = report
        .events
        .count(|e| matches!(e, Event::DvfsChanged { node: 0, level } if *level == DvfsLevel::P4));
    assert_eq!(throttles, 1, "DVFS forced to P4 exactly once");
}

#[test]
fn blocked_migrations_reject_with_the_fault_reason() {
    use baat_sim::{Event, FaultKind};
    // Migrations blocked for the whole operating window: the requested
    // migration must be rejected with the typed fault reason and never
    // reach the cluster.
    let report = Simulation::new(one_fault_config(
        FaultKind::MigrationsBlocked,
        8 * 3600,
        10 * 60,
    ))
    .expect("config valid")
    .run(&mut MigrateOnce { done: false })
    .expect("run succeeds");
    assert_eq!(report.migrations, 0, "no migration may start");
    let rejected: Vec<RejectReason> = report
        .events
        .iter()
        .filter_map(|e| match &e.event {
            Event::Action { outcome } => outcome.reject_reason(),
            _ => None,
        })
        .collect();
    assert_eq!(rejected, vec![RejectReason::FaultInjected]);
}

#[test]
fn host_failure_pins_the_server_down_for_its_window() {
    use baat_sim::{Event, FaultKind, RoundRobinPolicy};
    let fault_start = 12 * 3600;
    let fault_end = fault_start + 30 * 60;
    let report = Simulation::new(one_fault_config(
        FaultKind::HostFailure { node: 1 },
        fault_start,
        30,
    ))
    .expect("config valid")
    .run(&mut RoundRobinPolicy::new())
    .expect("run succeeds");
    let shutdown = report
        .events
        .iter()
        .find(|e| matches!(e.event, Event::ServerShutdown { node: 1 }))
        .expect("the failed host must shut down");
    assert_eq!(shutdown.at.as_secs(), fault_start);
    let restart = report
        .events
        .iter()
        .find(|e| matches!(e.event, Event::ServerRestart { node: 1 }))
        .expect("the host must come back after the fault clears");
    assert!(
        restart.at.as_secs() >= fault_end,
        "restarted at {} while the fault held until {fault_end}",
        restart.at.as_secs()
    );
    assert!(
        restart.at.as_secs() <= fault_end + 30 * 60,
        "a sunny midday must restart the node promptly"
    );
    assert!(report.nodes[1].downtime >= SimDuration::from_minutes(30));
}

#[test]
fn fallback_scheme_backs_off_from_rejections() {
    // The public no-repeat contract: an action the engine rejected on
    // one interval is withheld on the next and may retry after.
    use baat_sim::{ActionOutcome, ActionResult, FallbackInput, FallbackScheme, FALLBACK_DVFS};
    let mut scheme = FallbackScheme::new();
    let degraded = [FallbackInput {
        node: 0,
        degraded: true,
        soc_floor: Soc::EMPTY,
        dvfs: DvfsLevel::P0,
    }];
    let first = scheme.plan(&degraded);
    assert_eq!(first.len(), 2, "floor raise + throttle");
    assert!(first
        .iter()
        .any(|a| matches!(a, Action::SetDvfs { node: 0, level } if *level == FALLBACK_DVFS)));
    scheme.record_outcomes(
        &first
            .iter()
            .map(|&action| ActionOutcome {
                action,
                result: ActionResult::Rejected(RejectReason::UnknownNode),
            })
            .collect::<Vec<_>>(),
    );
    assert!(
        scheme.plan(&degraded).is_empty(),
        "freshly rejected actions must not repeat"
    );
    scheme.record_outcomes(&[]);
    assert_eq!(
        scheme.plan(&degraded).len(),
        2,
        "may retry one interval later"
    );
}

#[test]
fn a_dying_battery_is_visible_and_survivable() {
    use baat_sim::RoundRobinPolicy;
    // Inject a nearly-dead unit on node 2 and run a cloudy day: the sick
    // node must surface in the report without breaking the run.
    let mut sim = Simulation::new(config(Weather::Cloudy, 13)).expect("config valid");
    sim.pre_age_bank(2, 0.95).expect("bank exists");
    assert!(sim.pre_age_bank(99, 0.5).is_err(), "bad index must error");
    let report = sim.run(&mut RoundRobinPolicy::new()).expect("run succeeds");
    assert_eq!(report.worst_node().expect("has nodes").node, 2);
    assert!(report.nodes[2].capacity_fraction < 0.82);
    assert!(report.total_work > 0.0, "the fleet keeps computing");
}

/// A policy that throttles node 0 once and never touches anything else —
/// the probe for per-node dirty-mark targeting.
struct DvfsOnce {
    issued: bool,
}

impl Policy for DvfsOnce {
    fn name(&self) -> &'static str {
        "dvfs-once"
    }

    fn control(&mut self, _view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        if self.issued {
            return Vec::new();
        }
        self.issued = true;
        vec![Action::SetDvfs {
            node: 0,
            level: DvfsLevel::P3,
        }]
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (0..view.nodes.len()).collect()
    }
}

/// Applied actions dirty exactly the acted-on node: after a lone DVFS
/// throttle of node 0, the action seam has fired once, node 0 carries
/// the action-dirty bit, and an untouched node does not.
#[test]
fn applied_actions_dirty_only_their_target_node() {
    use baat_sim::DirtyReason;
    let mut sim = Simulation::new(config(Weather::Sunny, 31)).expect("config valid");
    let mut policy = DvfsOnce { issued: false };
    // Control intervals only run in-window: step past 08:30 (step 510
    // at dt=60) with room for several 300 s control intervals, so the
    // single throttle has certainly been applied.
    sim.run_steps(&mut policy, 530).expect("prefix runs");
    let fleet = sim.fleet();
    assert_eq!(
        fleet.reason_marks(DirtyReason::Action),
        1,
        "exactly one action mark for the lone DVFS throttle"
    );
    // DvfsOnce has no placement spec, so the legacy path never drains
    // the dirty set: the accumulated reason bits are inspectable.
    assert_ne!(
        fleet.dirty_reasons(0) & DirtyReason::Action.bit(),
        0,
        "node 0 must carry the action-dirty bit"
    );
    assert_eq!(
        fleet.dirty_reasons(3) & DirtyReason::Action.bit(),
        0,
        "node 3 was never acted on"
    );
}

/// Fault injection AND clearing both invalidate the afflicted bank's
/// members, and the staleness-driven degraded flips mark the node too.
#[test]
fn fault_edges_and_degraded_flips_mark_the_dirty_set() {
    use baat_sim::{DirtyReason, FaultKind, RoundRobinPolicy};
    let config = one_fault_config(FaultKind::SensorDropout { bank: 2 }, 10 * 3600, 20);
    let steps = 86_400 / config.dt.as_secs();
    let mut sim = Simulation::new(config).expect("config valid");
    sim.run_steps(&mut RoundRobinPolicy::new(), steps)
        .expect("day runs");
    let fleet = sim.fleet();
    assert_eq!(
        fleet.reason_marks(DirtyReason::Fault),
        2,
        "one mark at injection, one at clearing (per-server bank 2 has one member)"
    );
    assert!(
        fleet.reason_marks(DirtyReason::Degraded) >= 2,
        "node 2 entered and left degraded mode"
    );
    // The always-on seams fired throughout the day.
    assert!(
        fleet.reason_marks(DirtyReason::Battery) >= steps,
        "every battery step re-dirties the fleet"
    );
    assert!(
        fleet.reason_marks(DirtyReason::ModeSwitch) > 0,
        "charger stage transitions must mark their bank's members"
    );
    assert!(
        fleet.reason_marks(DirtyReason::Power) > 0,
        "window edges and shutdowns mark power transitions"
    );
}
