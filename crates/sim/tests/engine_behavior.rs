//! Engine behaviour tests driven by scripted policies: verify that the
//! engine actually enforces the actions policies request.

use baat_server::DvfsLevel;
use baat_sim::{Action, ControlCtx, Policy, RejectReason, SimConfig, Simulation, SystemView};
use baat_solar::Weather;
use baat_units::{SimDuration, Soc};
use baat_workload::WorkloadKind;

fn config(weather: Weather, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .dt(SimDuration::from_secs(60))
        .sample_every(10)
        .seed(seed);
    b.build().expect("config is valid")
}

/// A policy that pins every battery's SoC floor and throttles one node.
struct Scripted {
    floor: Soc,
    issued: bool,
}

impl Policy for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn control(&mut self, view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        if self.issued {
            return Vec::new();
        }
        self.issued = true;
        let mut actions: Vec<Action> = view
            .nodes
            .iter()
            .map(|n| Action::SetSocFloor {
                node: n.node,
                floor: self.floor,
            })
            .collect();
        actions.push(Action::SetDvfs {
            node: 0,
            level: DvfsLevel::P3,
        });
        // An out-of-range action must be rejected, not crash.
        actions.push(Action::SetDvfs {
            node: 999,
            level: DvfsLevel::P1,
        });
        actions
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (0..view.nodes.len()).collect()
    }
}

#[test]
fn soc_floors_are_enforced_by_the_engine() {
    // A 55 % floor on a rainy day: batteries must never be discharged
    // below it (self-discharge aside).
    let mut policy = Scripted {
        floor: Soc::saturating(0.55),
        issued: false,
    };
    let report = Simulation::new(config(Weather::Rainy, 5))
        .expect("config valid")
        .run(&mut policy)
        .expect("run succeeds");
    for row in report.recorder.rows() {
        for &soc in &row.soc {
            assert!(soc >= 0.53, "floor violated: soc {soc} at {}", row.at);
        }
    }
    // The floor starves the servers instead: demand goes unserved.
    assert!(
        report.unserved_energy.as_f64() > 0.0,
        "a high floor on a rainy day must shed load"
    );
}

#[test]
fn rejected_actions_are_logged_not_fatal() {
    use baat_sim::Event;
    let mut policy = Scripted {
        floor: Soc::saturating(0.2),
        issued: false,
    };
    let report = Simulation::new(config(Weather::Sunny, 6))
        .expect("config valid")
        .run(&mut policy)
        .expect("run succeeds");
    let rejected: Vec<RejectReason> = report
        .events
        .iter()
        .filter_map(|e| match &e.event {
            Event::Action { outcome } => outcome.reject_reason(),
            _ => None,
        })
        .collect();
    assert!(
        rejected.contains(&RejectReason::UnknownNode),
        "the node-999 DVFS request must be rejected as unknown-node, got {rejected:?}"
    );
    assert!(
        report
            .events
            .count(|e| matches!(e, Event::SocFloorChanged { .. }))
            >= 6,
        "floor changes must be logged per node"
    );
    assert!(
        report
            .events
            .count(|e| matches!(e, Event::DvfsChanged { node: 0, .. }))
            >= 1
    );
}

/// A policy that migrates the first VM it sees, once.
struct MigrateOnce {
    done: bool,
}

impl Policy for MigrateOnce {
    fn name(&self) -> &'static str {
        "migrate-once"
    }

    fn control(&mut self, view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        if self.done {
            return Vec::new();
        }
        for node in &view.nodes {
            for vm in &node.vms {
                let request = vm.kind.resource_request();
                let target = view.nodes.iter().find(|t| {
                    t.node != node.node
                        && t.online
                        && t.free_resources.0 >= request.0
                        && t.free_resources.1 >= request.1
                });
                if let Some(target) = target {
                    self.done = true;
                    return vec![Action::Migrate {
                        vm: vm.id,
                        target: target.node,
                    }];
                }
            }
        }
        Vec::new()
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (0..view.nodes.len()).collect()
    }
}

#[test]
fn policy_migrations_flow_through_the_cluster() {
    let mut policy = MigrateOnce { done: false };
    let report = Simulation::new(config(Weather::Sunny, 9))
        .expect("config valid")
        .run(&mut policy)
        .expect("run succeeds");
    assert_eq!(report.migrations, 1, "exactly one migration was requested");
}

/// A policy that requests an impossible migration and records whether the
/// engine fed the failure back on the next control interval.
struct FeedbackProbe {
    requested: bool,
    saw_rejection: bool,
}

impl Policy for FeedbackProbe {
    fn name(&self) -> &'static str {
        "feedback-probe"
    }

    fn control(&mut self, _view: &SystemView, ctx: &ControlCtx<'_>) -> Vec<Action> {
        if self.requested {
            for vm in ctx.rejected_migrations() {
                assert_eq!(vm, baat_workload::VmId(u64::MAX));
                self.saw_rejection = true;
            }
            for outcome in ctx.last_outcomes {
                assert_eq!(outcome.reject_reason(), Some(RejectReason::UnknownVm));
            }
            return Vec::new();
        }
        self.requested = true;
        vec![Action::Migrate {
            vm: baat_workload::VmId(u64::MAX),
            target: 0,
        }]
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        (0..view.nodes.len()).collect()
    }
}

#[test]
fn rejected_migrations_are_fed_back_to_the_policy() {
    let mut policy = FeedbackProbe {
        requested: false,
        saw_rejection: false,
    };
    Simulation::new(config(Weather::Sunny, 17))
        .expect("config valid")
        .run(&mut policy)
        .expect("run succeeds");
    assert!(
        policy.saw_rejection,
        "the next ControlCtx must surface the rejected migration"
    );
}

#[test]
fn pending_jobs_carry_over_between_days() {
    use baat_sim::{Event, RoundRobinPolicy};
    // Overload a tiny cluster so the queue cannot drain in one day.
    let mut b = SimConfig::builder();
    b.weather_plan(vec![Weather::Sunny, Weather::Sunny])
        .nodes(2)
        .dt(SimDuration::from_secs(60))
        .sample_every(10)
        .workload_mix(2, 60)
        .seed(8);
    let report = Simulation::new(b.build().expect("config valid"))
        .expect("sim builds")
        .run(&mut RoundRobinPolicy::new())
        .expect("run succeeds");
    // Day 2 reports the carried-over queue.
    assert!(
        report
            .events
            .count(|e| matches!(e, Event::PlacementFailed { .. }))
            > 0,
        "an overloaded 2-node cluster must carry jobs over"
    );
    assert!(report.completed_jobs > 0);
}

#[test]
fn grid_charging_happens_only_at_night() {
    use baat_sim::RoundRobinPolicy;
    let report = Simulation::new(config(Weather::Sunny, 11))
        .expect("config valid")
        .run(&mut RoundRobinPolicy::new())
        .expect("run succeeds");
    // Overnight utility charging replaces what the day drained; with
    // batteries starting full it is bounded by a day's worth of cycling.
    assert!(report.grid_charge_energy.as_f64() >= 0.0);
    assert!(
        report.grid_charge_energy.as_kwh() < 12.0,
        "grid draw implausibly large: {}",
        report.grid_charge_energy
    );
}

#[test]
fn a_dying_battery_is_visible_and_survivable() {
    use baat_sim::RoundRobinPolicy;
    // Inject a nearly-dead unit on node 2 and run a cloudy day: the sick
    // node must surface in the report without breaking the run.
    let mut sim = Simulation::new(config(Weather::Cloudy, 13)).expect("config valid");
    sim.pre_age_bank(2, 0.95).expect("bank exists");
    assert!(sim.pre_age_bank(99, 0.5).is_err(), "bad index must error");
    let report = sim.run(&mut RoundRobinPolicy::new()).expect("run succeeds");
    assert_eq!(report.worst_node().expect("has nodes").node, 2);
    assert!(report.nodes[2].capacity_fraction < 0.82);
    assert!(report.total_work > 0.0, "the fleet keeps computing");
}
