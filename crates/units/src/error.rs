//! Error type for quantity validation.

/// Validation failure when constructing a bounded quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnitError {
    /// The value fell outside the quantity's valid range (or was NaN).
    OutOfRange {
        /// Name of the quantity being constructed.
        quantity: &'static str,
        /// The offending value.
        value: f64,
        /// Smallest permitted value.
        min: f64,
        /// Largest permitted value.
        max: f64,
    },
}

impl core::fmt::Display for UnitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UnitError::OutOfRange {
                quantity,
                value,
                min,
                max,
            } => write!(
                f,
                "{quantity} value {value} outside valid range [{min}, {max}]"
            ),
        }
    }
}

impl std::error::Error for UnitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_descriptive() {
        let err = UnitError::OutOfRange {
            quantity: "Soc",
            value: 1.5,
            min: 0.0,
            max: 1.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("Soc"));
        assert!(msg.contains("1.5"));
    }
}
