//! Simulation time: instants, durations, and time of day.
//!
//! Simulation time is integer seconds since the start of the simulation.
//! Integer arithmetic keeps long runs (months of simulated time) free of
//! floating-point drift.

/// A span of simulated time, in whole seconds.
///
/// # Examples
///
/// ```
/// use baat_units::SimDuration;
///
/// let d = SimDuration::from_hours(2) + SimDuration::from_minutes(30);
/// assert_eq!(d.as_secs(), 9000);
/// assert_eq!(d.as_hours(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs)
    }

    /// Creates a duration from whole minutes.
    #[inline]
    pub const fn from_minutes(minutes: u64) -> Self {
        Self(minutes * 60)
    }

    /// Creates a duration from whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        Self(hours * 3600)
    }

    /// Creates a duration from whole days.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        Self(days * 86_400)
    }

    /// Returns the duration in whole seconds.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the duration in (possibly fractional) hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Returns the duration in (possibly fractional) minutes.
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Returns the duration in (possibly fractional) days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns `self - rhs` or zero.
    #[inline]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (d, rem) = (self.0 / 86_400, self.0 % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

impl core::ops::Add for SimDuration {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|d| d.0).sum())
    }
}

/// An instant on the simulation clock: whole seconds since simulation start.
///
/// # Examples
///
/// ```
/// use baat_units::{SimInstant, SimDuration};
///
/// let t0 = SimInstant::START;
/// let t1 = t0 + SimDuration::from_hours(1);
/// assert_eq!(t1 - t0, SimDuration::from_hours(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The beginning of simulated time.
    pub const START: SimInstant = SimInstant(0);

    /// Creates an instant from whole seconds since simulation start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs)
    }

    /// Seconds since simulation start.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The elapsed duration since simulation start.
    #[inline]
    pub const fn elapsed(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Which simulated day (0-based) this instant falls in.
    #[inline]
    pub const fn day(self) -> u64 {
        self.0 / 86_400
    }

    /// The time of day at this instant.
    #[inline]
    pub const fn time_of_day(self) -> TimeOfDay {
        TimeOfDay((self.0 % 86_400) as u32)
    }

    /// Saturating difference between instants.
    #[inline]
    pub const fn saturating_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl core::fmt::Display for SimInstant {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "day {} {}", self.day(), self.time_of_day())
    }
}

impl core::ops::Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<SimDuration> for SimInstant {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for SimInstant {
    type Output = SimDuration;

    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimInstant::saturating_since`] when ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimInstant) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "instant subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

/// A wall-clock time of day within a simulated day (seconds past midnight).
///
/// The paper's prototype powers servers from 08:30 to 18:30; schedules are
/// expressed with this type.
///
/// # Examples
///
/// ```
/// use baat_units::TimeOfDay;
///
/// let open = TimeOfDay::from_hm(8, 30);
/// assert_eq!(open.hour(), 8);
/// assert_eq!(open.minute(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeOfDay(u32);

impl TimeOfDay {
    /// Midnight.
    pub const MIDNIGHT: TimeOfDay = TimeOfDay(0);
    /// Noon.
    pub const NOON: TimeOfDay = TimeOfDay(12 * 3600);

    /// Creates a time of day from hours and minutes.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24` or `minute >= 60`.
    #[inline]
    pub const fn from_hm(hour: u32, minute: u32) -> Self {
        assert!(hour < 24 && minute < 60, "invalid time of day");
        Self(hour * 3600 + minute * 60)
    }

    /// Creates a time of day from seconds past midnight.
    ///
    /// # Panics
    ///
    /// Panics if `secs >= 86_400`.
    #[inline]
    pub const fn from_secs(secs: u32) -> Self {
        assert!(secs < 86_400, "time of day out of range");
        Self(secs)
    }

    /// Seconds past midnight.
    #[inline]
    pub const fn as_secs(self) -> u32 {
        self.0
    }

    /// The hour component (0–23).
    #[inline]
    pub const fn hour(self) -> u32 {
        self.0 / 3600
    }

    /// The minute component (0–59).
    #[inline]
    pub const fn minute(self) -> u32 {
        (self.0 % 3600) / 60
    }

    /// Fractional hours past midnight (e.g. 8.5 for 08:30).
    #[inline]
    pub fn as_fractional_hours(self) -> f64 {
        f64::from(self.0) / 3600.0
    }

    /// `true` if this time lies in `[start, end)`.
    #[inline]
    pub fn is_between(self, start: TimeOfDay, end: TimeOfDay) -> bool {
        start <= self && self < end
    }
}

impl core::fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:02}:{:02}", self.hour(), self.minute())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_minutes(60), SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_hours(24), SimDuration::from_days(1));
        assert_eq!(SimDuration::from_secs(90).as_minutes(), 1.5);
    }

    #[test]
    fn instant_day_and_time_of_day() {
        let t = SimInstant::from_secs(86_400 * 2 + 3600 * 9 + 60 * 15);
        assert_eq!(t.day(), 2);
        assert_eq!(t.time_of_day(), TimeOfDay::from_hm(9, 15));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimInstant::from_secs(10);
        let late = SimInstant::from_secs(100);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(90));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn time_of_day_window() {
        let open = TimeOfDay::from_hm(8, 30);
        let close = TimeOfDay::from_hm(18, 30);
        assert!(TimeOfDay::NOON.is_between(open, close));
        assert!(!TimeOfDay::from_hm(7, 0).is_between(open, close));
        assert!(!close.is_between(open, close));
        assert!(open.is_between(open, close));
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!("{}", SimDuration::from_secs(86_400 + 3661)),
            "1d 01:01:01"
        );
        assert_eq!(format!("{}", TimeOfDay::from_hm(8, 5)), "08:05");
    }

    #[test]
    #[should_panic(expected = "invalid time of day")]
    fn invalid_time_of_day_panics() {
        let _ = TimeOfDay::from_hm(24, 0);
    }
}
