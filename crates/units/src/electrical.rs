//! Electrical quantities: current, charge, voltage, resistance.

use crate::energy::Watts;
use crate::quantity;
use crate::time::SimDuration;

quantity!(
    /// Electric current in amperes.
    ///
    /// The battery model uses the convention that *positive* current is a
    /// discharge (charge leaving the battery) and *negative* current is a
    /// charge, matching the sign of the paper's Ah-throughput integrals.
    Amperes,
    "A"
);

quantity!(
    /// Electric charge in ampere-hours — the unit battery capacities and the
    /// paper's Ah-throughput metric (Eq 1) are expressed in.
    AmpHours,
    "Ah"
);

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);

quantity!(
    /// Electrical resistance in ohms.
    Ohms,
    "Ω"
);

impl core::ops::Mul<SimDuration> for Amperes {
    type Output = AmpHours;

    /// Charge moved by this current flowing for `rhs`.
    #[inline]
    fn mul(self, rhs: SimDuration) -> AmpHours {
        AmpHours::new(self.as_f64() * rhs.as_hours())
    }
}

impl core::ops::Mul<Amperes> for SimDuration {
    type Output = AmpHours;
    #[inline]
    fn mul(self, rhs: Amperes) -> AmpHours {
        rhs * self
    }
}

impl core::ops::Div<SimDuration> for AmpHours {
    type Output = Amperes;

    /// Average current that moves this charge over `rhs`.
    #[inline]
    fn div(self, rhs: SimDuration) -> Amperes {
        Amperes::new(self.as_f64() / rhs.as_hours())
    }
}

impl core::ops::Mul<Amperes> for Volts {
    type Output = Watts;

    /// Electrical power `P = V · I`.
    #[inline]
    fn mul(self, rhs: Amperes) -> Watts {
        Watts::new(self.as_f64() * rhs.as_f64())
    }
}

impl core::ops::Mul<Volts> for Amperes {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl core::ops::Div<Volts> for Watts {
    type Output = Amperes;

    /// Current drawn at a given voltage, `I = P / V`.
    #[inline]
    fn div(self, rhs: Volts) -> Amperes {
        Amperes::new(self.as_f64() / rhs.as_f64())
    }
}

impl core::ops::Mul<Ohms> for Amperes {
    type Output = Volts;

    /// Ohmic voltage drop `V = I · R`.
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.as_f64() * rhs.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_times_duration_is_charge() {
        let q = Amperes::new(2.0) * SimDuration::from_hours(3);
        assert_eq!(q, AmpHours::new(6.0));
    }

    #[test]
    fn charge_over_duration_is_current() {
        let i = AmpHours::new(10.0) / SimDuration::from_hours(5);
        assert_eq!(i, Amperes::new(2.0));
    }

    #[test]
    fn volt_amp_is_watt_both_orders() {
        assert_eq!(Volts::new(12.0) * Amperes::new(3.0), Watts::new(36.0));
        assert_eq!(Amperes::new(3.0) * Volts::new(12.0), Watts::new(36.0));
    }

    #[test]
    fn power_over_volts_is_current() {
        assert_eq!(Watts::new(120.0) / Volts::new(12.0), Amperes::new(10.0));
    }

    #[test]
    fn ohmic_drop() {
        assert_eq!(Amperes::new(4.0) * Ohms::new(0.5), Volts::new(2.0));
    }

    #[test]
    fn negative_current_models_charging() {
        let charging = Amperes::new(-3.0);
        let q = charging * SimDuration::from_hours(1);
        assert_eq!(q, AmpHours::new(-3.0));
        assert_eq!(q.abs(), AmpHours::new(3.0));
    }
}
