//! Monetary quantities for the cost and TCO models.

use crate::quantity;

quantity!(
    /// A monetary amount in US dollars.
    ///
    /// The cost model (paper §VI.D) expresses battery depreciation and
    /// datacenter TCO in dollars; negative values represent savings.
    Dollars,
    "$"
);

impl Dollars {
    /// Splits an amount evenly over `years`, i.e. straight-line annual
    /// depreciation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `years` is not positive and finite.
    #[inline]
    pub fn per_year(self, years: f64) -> Dollars {
        debug_assert!(years > 0.0 && years.is_finite(), "invalid year count");
        Dollars::new(self.as_f64() / years)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_depreciation() {
        let annual = Dollars::new(300.0).per_year(3.0);
        assert_eq!(annual, Dollars::new(100.0));
    }

    #[test]
    fn savings_are_negative() {
        let delta = Dollars::new(74.0) - Dollars::new(100.0);
        assert_eq!(delta, Dollars::new(-26.0));
    }
}
