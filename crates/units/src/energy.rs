//! Power and energy quantities.

use crate::quantity;
use crate::time::SimDuration;

quantity!(
    /// Electrical power in watts.
    ///
    /// Positive values flow *toward* the consumer unless a component
    /// documents otherwise.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_units::{Watts, SimDuration};
    ///
    /// let p = Watts::new(250.0);
    /// let e = p * SimDuration::from_minutes(30);
    /// assert_eq!(e.as_f64(), 125.0);
    /// ```
    Watts,
    "W"
);

quantity!(
    /// Electrical energy in watt-hours.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_units::WattHours;
    ///
    /// let e = WattHours::from_kwh(1.5);
    /// assert_eq!(e.as_f64(), 1500.0);
    /// assert_eq!(e.as_kwh(), 1.5);
    /// ```
    WattHours,
    "Wh"
);

impl Watts {
    /// Creates a power quantity from kilowatts.
    #[inline]
    pub fn from_kw(kw: f64) -> Self {
        Self::new(kw * 1000.0)
    }

    /// Returns the value in kilowatts.
    #[inline]
    pub fn as_kw(self) -> f64 {
        self.as_f64() / 1000.0
    }
}

impl WattHours {
    /// Creates an energy quantity from kilowatt-hours.
    #[inline]
    pub fn from_kwh(kwh: f64) -> Self {
        Self::new(kwh * 1000.0)
    }

    /// Returns the value in kilowatt-hours.
    #[inline]
    pub fn as_kwh(self) -> f64 {
        self.as_f64() / 1000.0
    }
}

impl core::ops::Mul<SimDuration> for Watts {
    type Output = WattHours;

    /// Energy accumulated by drawing this power for `rhs`.
    #[inline]
    fn mul(self, rhs: SimDuration) -> WattHours {
        WattHours::new(self.as_f64() * rhs.as_hours())
    }
}

impl core::ops::Mul<Watts> for SimDuration {
    type Output = WattHours;
    #[inline]
    fn mul(self, rhs: Watts) -> WattHours {
        rhs * self
    }
}

impl core::ops::Div<SimDuration> for WattHours {
    type Output = Watts;

    /// Average power that delivers this energy over `rhs`.
    #[inline]
    fn div(self, rhs: SimDuration) -> Watts {
        Watts::new(self.as_f64() / rhs.as_hours())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kw_conversions() {
        assert_eq!(Watts::from_kw(2.5).as_f64(), 2500.0);
        assert_eq!(Watts::new(500.0).as_kw(), 0.5);
        assert_eq!(WattHours::from_kwh(0.25).as_f64(), 250.0);
    }

    #[test]
    fn power_times_duration_is_energy() {
        let e = Watts::new(100.0) * SimDuration::from_minutes(90);
        assert!((e.as_f64() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.5)].into_iter().sum();
        assert_eq!(total, Watts::new(3.5));
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless() {
        let r = WattHours::new(30.0) / WattHours::new(60.0);
        assert_eq!(r, 0.5);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Watts::new(1.5)), "1.500 W");
        assert_eq!(format!("{}", WattHours::new(2.0)), "2.000 Wh");
    }
}
