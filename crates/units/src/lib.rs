//! Typed physical quantities for the BAAT green-datacenter simulator.
//!
//! Every quantity that crosses a crate boundary in this workspace is a
//! newtype over `f64` (or integer seconds for time), so that watts can never
//! be confused with watt-hours, amperes with ampere-hours, or a state of
//! charge with a depth of discharge. Arithmetic is only defined where it is
//! physically meaningful, e.g. multiplying [`Watts`] by a [`SimDuration`]
//! yields [`WattHours`], and multiplying [`Volts`] by [`Amperes`] yields
//! [`Watts`].
//!
//! # Examples
//!
//! ```
//! use baat_units::{Watts, Volts, Amperes, SimDuration};
//!
//! let load = Volts::new(12.0) * Amperes::new(5.0);
//! assert_eq!(load, Watts::new(60.0));
//!
//! let energy = load * SimDuration::from_hours(2);
//! assert_eq!(energy.as_f64(), 120.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod electrical;
mod energy;
mod error;
mod fraction;
mod money;
mod thermal;
mod time;

pub use electrical::{AmpHours, Amperes, Ohms, Volts};
pub use energy::{WattHours, Watts};
pub use error::UnitError;
pub use fraction::{Dod, Fraction, Scale, Soc};
pub use money::Dollars;
pub use thermal::Celsius;
pub use time::{SimDuration, SimInstant, TimeOfDay};

/// Declares a `f64`-backed quantity newtype with the shared method surface.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a raw `f64` value.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            pub const fn as_f64(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity to the inclusive range `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

pub(crate) use quantity;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_unit_arithmetic_round_trips() {
        let p = Volts::new(12.0) * Amperes::new(2.0);
        assert_eq!(p, Watts::new(24.0));
        let e = p * SimDuration::from_hours(3);
        assert_eq!(e, WattHours::new(72.0));
        let back = e / SimDuration::from_hours(3);
        assert_eq!(back, Watts::new(24.0));
    }

    #[test]
    fn quantities_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Watts>();
        assert_send_sync::<WattHours>();
        assert_send_sync::<Amperes>();
        assert_send_sync::<AmpHours>();
        assert_send_sync::<Volts>();
        assert_send_sync::<Ohms>();
        assert_send_sync::<Celsius>();
        assert_send_sync::<Soc>();
        assert_send_sync::<Dod>();
        assert_send_sync::<SimInstant>();
        assert_send_sync::<SimDuration>();
        assert_send_sync::<Dollars>();
    }
}
