//! Bounded dimensionless quantities: fractions, state of charge, depth of
//! discharge.

use crate::error::UnitError;

/// A dimensionless value validated to lie in `[0, 1]`.
///
/// Used for efficiencies, probabilities, utilizations and sunshine
/// fractions.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), baat_units::UnitError> {
/// use baat_units::Fraction;
///
/// let eff = Fraction::new(0.85)?;
/// assert_eq!(eff.value(), 0.85);
/// assert!(Fraction::new(1.2).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Fraction(f64);

impl Fraction {
    /// The zero fraction.
    pub const ZERO: Fraction = Fraction(0.0);
    /// The unit fraction.
    pub const ONE: Fraction = Fraction(1.0);
    /// One half.
    pub const HALF: Fraction = Fraction(0.5);

    /// Creates a fraction, validating that `value ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `value` is NaN or outside
    /// `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(UnitError::OutOfRange {
                quantity: "Fraction",
                value,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(Self(value))
    }

    /// Creates a fraction, clamping `value` into `[0, 1]` (NaN becomes 0).
    #[inline]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// Creates a fraction from a percentage in `[0, 100]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `pct` is NaN or outside
    /// `[0, 100]`.
    pub fn from_percent(pct: f64) -> Result<Self, UnitError> {
        Self::new(pct / 100.0).map_err(|_| UnitError::OutOfRange {
            quantity: "Fraction (percent)",
            value: pct,
            min: 0.0,
            max: 100.0,
        })
    }

    /// Returns the raw value in `[0, 1]`.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the value expressed as a percentage in `[0, 100]`.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns the complementary fraction `1 - self`.
    #[inline]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }
}

impl core::fmt::Display for Fraction {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1}%", self.as_percent())
    }
}

/// A positive, finite dimensionless multiplier (e.g. a manufacturing
/// capacity scale or an aging-rate multiplier), nominally near `1.0`.
///
/// Unlike [`Fraction`] a scale may exceed one: a unit drawn from a ±3 %
/// manufacturing spread can be 1.03× nominal.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), baat_units::UnitError> {
/// use baat_units::Scale;
///
/// let s = Scale::new(1.03)?;
/// assert_eq!(s.value(), 1.03);
/// assert!(Scale::new(0.0).is_err());
/// assert!(Scale::new(f64::NAN).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Scale(f64);

impl Scale {
    /// The identity scale.
    pub const ONE: Scale = Scale(1.0);

    /// Creates a scale, validating that `value` is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `value` is NaN, infinite, or
    /// not strictly positive.
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if !(value.is_finite() && value > 0.0) {
            return Err(UnitError::OutOfRange {
                quantity: "Scale",
                value,
                min: f64::MIN_POSITIVE,
                max: f64::MAX,
            });
        }
        Ok(Self(value))
    }

    /// Returns the raw multiplier.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::ONE
    }
}

impl core::fmt::Display for Scale {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}×", self.0)
    }
}

/// Battery state of charge: the fraction of effective capacity currently
/// stored, in `[0, 1]`.
///
/// The paper's partial-cycling metric (Eq 3-4) divides the SoC axis into
/// four ranges A–D; [`Soc::cycling_range`] exposes that classification.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), baat_units::UnitError> {
/// use baat_units::Soc;
///
/// let soc = Soc::new(0.35)?;
/// assert!(soc.is_deep_discharge());
/// assert_eq!(soc.cycling_range(), baat_units::Soc::RANGE_D);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Soc(f64);

impl Soc {
    /// A fully charged battery.
    pub const FULL: Soc = Soc(1.0);
    /// A fully discharged battery.
    pub const EMPTY: Soc = Soc(0.0);

    /// SoC range A: 80–100 % (paper §III.C).
    pub const RANGE_A: u8 = 0;
    /// SoC range B: 60–79 %.
    pub const RANGE_B: u8 = 1;
    /// SoC range C: 40–59 %.
    pub const RANGE_C: u8 = 2;
    /// SoC range D: 0–39 % — the deep-discharge region.
    pub const RANGE_D: u8 = 3;

    /// The 40 % threshold below which the paper counts deep discharge
    /// (Eq 5).
    pub const DEEP_DISCHARGE_THRESHOLD: Soc = Soc(0.40);

    /// Creates a state of charge, validating that `value ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `value` is NaN or outside
    /// `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(UnitError::OutOfRange {
                quantity: "Soc",
                value,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(Self(value))
    }

    /// Creates a state of charge, clamping into `[0, 1]` (NaN becomes 0).
    #[inline]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// Returns the raw value in `[0, 1]`.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the SoC as a percentage in `[0, 100]`.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The complementary depth of discharge, `DoD = 1 - SoC`.
    #[inline]
    pub fn to_dod(self) -> Dod {
        Dod(1.0 - self.0)
    }

    /// `true` if the battery is in the deep-discharge region (SoC < 40 %,
    /// Eq 5 of the paper).
    #[inline]
    pub fn is_deep_discharge(self) -> bool {
        self.0 < Self::DEEP_DISCHARGE_THRESHOLD.0
    }

    /// The partial-cycling range this SoC falls into (paper §III.C):
    /// A = 100–80 %, B = 79–60 %, C = 59–40 %, D = 39–0 %.
    #[inline]
    pub fn cycling_range(self) -> u8 {
        let pct = self.as_percent();
        if pct >= 80.0 {
            Self::RANGE_A
        } else if pct >= 60.0 {
            Self::RANGE_B
        } else if pct >= 40.0 {
            Self::RANGE_C
        } else {
            Self::RANGE_D
        }
    }

    /// The Eq-4 damage weight of this SoC's cycling range (A=1 … D=4).
    #[inline]
    pub fn cycling_weight(self) -> f64 {
        f64::from(self.cycling_range()) + 1.0
    }
}

impl core::fmt::Display for Soc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SoC {:.1}%", self.as_percent())
    }
}

/// Battery depth of discharge, in `[0, 1]`; the complement of [`Soc`].
///
/// Cycle-life curves (paper Fig 10) are parameterized by DoD.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Dod(f64);

impl Dod {
    /// Creates a depth of discharge, validating that `value ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::OutOfRange`] if `value` is NaN or outside
    /// `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, UnitError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(UnitError::OutOfRange {
                quantity: "Dod",
                value,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(Self(value))
    }

    /// Creates a depth of discharge, clamping into `[0, 1]`.
    #[inline]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Self(0.0)
        } else {
            Self(value.clamp(0.0, 1.0))
        }
    }

    /// Returns the raw value in `[0, 1]`.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the DoD as a percentage in `[0, 100]`.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The complementary state of charge, `SoC = 1 - DoD`.
    #[inline]
    pub fn to_soc(self) -> Soc {
        Soc(1.0 - self.0)
    }
}

impl core::fmt::Display for Dod {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DoD {:.1}%", self.as_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_rejects_out_of_range() {
        assert!(Fraction::new(-0.01).is_err());
        assert!(Fraction::new(1.01).is_err());
        assert!(Fraction::new(f64::NAN).is_err());
        assert!(Fraction::new(0.0).is_ok());
        assert!(Fraction::new(1.0).is_ok());
    }

    #[test]
    fn fraction_saturating_clamps() {
        assert_eq!(Fraction::saturating(2.0), Fraction::ONE);
        assert_eq!(Fraction::saturating(-1.0), Fraction::ZERO);
        assert_eq!(Fraction::saturating(f64::NAN), Fraction::ZERO);
    }

    #[test]
    fn fraction_percent_round_trip() {
        let f = Fraction::from_percent(37.5).unwrap();
        assert!((f.as_percent() - 37.5).abs() < 1e-12);
        assert!((f.complement().value() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn scale_accepts_any_positive_finite_multiplier() {
        assert_eq!(Scale::new(1.5).unwrap().value(), 1.5);
        assert_eq!(Scale::default(), Scale::ONE);
        assert!(Scale::new(0.0).is_err());
        assert!(Scale::new(-1.0).is_err());
        assert!(Scale::new(f64::INFINITY).is_err());
        assert!(Scale::new(f64::NAN).is_err());
    }

    #[test]
    fn soc_ranges_match_paper_bands() {
        assert_eq!(Soc::new(1.0).unwrap().cycling_range(), Soc::RANGE_A);
        assert_eq!(Soc::new(0.80).unwrap().cycling_range(), Soc::RANGE_A);
        assert_eq!(Soc::new(0.79).unwrap().cycling_range(), Soc::RANGE_B);
        assert_eq!(Soc::new(0.60).unwrap().cycling_range(), Soc::RANGE_B);
        assert_eq!(Soc::new(0.59).unwrap().cycling_range(), Soc::RANGE_C);
        assert_eq!(Soc::new(0.40).unwrap().cycling_range(), Soc::RANGE_C);
        assert_eq!(Soc::new(0.39).unwrap().cycling_range(), Soc::RANGE_D);
        assert_eq!(Soc::new(0.0).unwrap().cycling_range(), Soc::RANGE_D);
    }

    #[test]
    fn soc_cycling_weights_are_one_to_four() {
        assert_eq!(Soc::new(0.9).unwrap().cycling_weight(), 1.0);
        assert_eq!(Soc::new(0.7).unwrap().cycling_weight(), 2.0);
        assert_eq!(Soc::new(0.5).unwrap().cycling_weight(), 3.0);
        assert_eq!(Soc::new(0.1).unwrap().cycling_weight(), 4.0);
    }

    #[test]
    fn deep_discharge_threshold_is_exclusive_at_forty() {
        assert!(!Soc::new(0.40).unwrap().is_deep_discharge());
        assert!(Soc::new(0.399).unwrap().is_deep_discharge());
    }

    #[test]
    fn soc_dod_are_complements() {
        let soc = Soc::new(0.3).unwrap();
        let dod = soc.to_dod();
        assert!((dod.value() - 0.7).abs() < 1e-12);
        assert!((dod.to_soc().value() - 0.3).abs() < 1e-12);
    }
}
