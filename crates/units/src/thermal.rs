//! Thermal quantities.

use crate::quantity;

quantity!(
    /// Temperature in degrees Celsius.
    ///
    /// The lead-acid aging literature the paper builds on (Jossen et al.
    /// \[26\]) expresses the temperature acceleration of aging relative to a
    /// 20 °C baseline: every 10 °C increase halves battery lifetime. The
    /// [`Celsius::arrhenius_factor`] helper encodes that rule.
    Celsius,
    "°C"
);

impl Celsius {
    /// The 20 °C reference temperature used by the lifetime models.
    pub const REFERENCE: Celsius = Celsius::new(20.0);

    /// Aging acceleration factor relative to the 20 °C baseline.
    ///
    /// Implements the doubling rule from the paper (§III.E): "a 10 °C
    /// temperature increase will result in a reduction of the lifetime by
    /// 50 %", i.e. `factor = 2^((T - 20) / 10)`. Temperatures below the
    /// baseline slow aging symmetrically.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_units::Celsius;
    ///
    /// assert_eq!(Celsius::new(20.0).arrhenius_factor(), 1.0);
    /// assert_eq!(Celsius::new(30.0).arrhenius_factor(), 2.0);
    /// ```
    #[inline]
    pub fn arrhenius_factor(self) -> f64 {
        2f64.powf((self.as_f64() - Self::REFERENCE.as_f64()) / 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrhenius_doubles_every_ten_degrees() {
        assert!((Celsius::new(40.0).arrhenius_factor() - 4.0).abs() < 1e-12);
        assert!((Celsius::new(10.0).arrhenius_factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reference_is_unity() {
        assert_eq!(Celsius::REFERENCE.arrhenius_factor(), 1.0);
    }
}
