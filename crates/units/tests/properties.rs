//! Property-based tests for the quantity types.

use baat_testkit::prelude::*;
use baat_units::{AmpHours, Amperes, Dod, Fraction, SimDuration, SimInstant, Soc, Volts, Watts};

proptest! {
    #[test]
    fn fraction_accepts_exactly_unit_interval(v in -2.0f64..3.0) {
        let ok = (0.0..=1.0).contains(&v);
        prop_assert_eq!(Fraction::new(v).is_ok(), ok);
    }

    #[test]
    fn fraction_saturating_always_in_range(v in baat_testkit::num::f64::ANY) {
        let f = Fraction::saturating(v);
        prop_assert!((0.0..=1.0).contains(&f.value()));
    }

    #[test]
    fn soc_dod_complement_round_trip(v in 0.0f64..=1.0) {
        let soc = Soc::new(v).unwrap();
        let back = soc.to_dod().to_soc();
        prop_assert!((back.value() - v).abs() < 1e-12);
    }

    #[test]
    fn soc_cycling_weight_monotone_nonincreasing(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let w_lo = Soc::new(lo).unwrap().cycling_weight();
        let w_hi = Soc::new(hi).unwrap().cycling_weight();
        // Lower SoC never has a smaller damage weight.
        prop_assert!(w_lo >= w_hi);
    }

    #[test]
    fn power_energy_round_trip(p in 0.0f64..1e6, hours in 1u64..1000) {
        let d = SimDuration::from_hours(hours);
        let e = Watts::new(p) * d;
        let back = e / d;
        prop_assert!((back.as_f64() - p).abs() < 1e-6 * p.max(1.0));
    }

    #[test]
    fn charge_integration_is_linear(i in -100.0f64..100.0, secs in 1u64..1_000_000) {
        let d = SimDuration::from_secs(secs);
        let q = Amperes::new(i) * d;
        let q2 = Amperes::new(2.0 * i) * d;
        prop_assert!((q2.as_f64() - 2.0 * q.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn instant_add_then_sub_is_identity(start in 0u64..1_000_000, delta in 0u64..1_000_000) {
        let t0 = SimInstant::from_secs(start);
        let d = SimDuration::from_secs(delta);
        prop_assert_eq!((t0 + d) - t0, d);
    }

    #[test]
    fn instant_day_time_decomposition(secs in 0u64..(86_400 * 400)) {
        let t = SimInstant::from_secs(secs);
        let rebuilt = t.day() * 86_400 + u64::from(t.time_of_day().as_secs());
        prop_assert_eq!(rebuilt, secs);
    }

    #[test]
    fn ohms_law_consistency(v in 1.0f64..100.0, i in 0.1f64..100.0) {
        let p = Volts::new(v) * Amperes::new(i);
        let back = p / Volts::new(v);
        prop_assert!((back.as_f64() - i).abs() < 1e-9);
    }

    #[test]
    fn amp_hours_sum_matches_piecewise(parts in baat_testkit::collection::vec(0.0f64..10.0, 1..20)) {
        let total: AmpHours = parts.iter().map(|&p| AmpHours::new(p)).sum();
        let expect: f64 = parts.iter().sum();
        prop_assert!((total.as_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn dod_valid_range(v in 0.0f64..=1.0) {
        let dod = Dod::new(v).unwrap();
        prop_assert!((dod.as_percent() - v * 100.0).abs() < 1e-9);
    }
}
