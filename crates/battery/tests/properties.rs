//! Property-based tests for battery invariants.

use baat_battery::{
    AgingModel, AgingState, AnyBattery, Battery, BatteryModel, BatteryOp, BatterySpec,
    DamageBreakdown, Manufacturer, MemoizedCycleLife, StressSample,
};
use baat_testkit::prelude::*;
use baat_units::{AmpHours, Amperes, Celsius, Dod, SimDuration, SimInstant, Soc, Watts};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SoC stays in [0, 1] under any operation sequence.
    #[test]
    fn soc_always_bounded(ops in baat_testkit::collection::vec((0.0f64..400.0, 0u8..3), 1..200)) {
        let mut b = Battery::new(BatterySpec::prototype());
        let dt = SimDuration::from_minutes(5);
        let mut now = SimInstant::START;
        for (power, kind) in ops {
            let op = match kind {
                0 => BatteryOp::Discharge(Watts::new(power)),
                1 => BatteryOp::Charge(Watts::new(power)),
                _ => BatteryOp::Idle,
            };
            b.step(op, Celsius::new(25.0), now, dt);
            now += dt;
            let soc = b.soc().value();
            prop_assert!((0.0..=1.0).contains(&soc), "soc {soc}");
        }
    }

    /// Damage is monotone non-decreasing and capacity monotone
    /// non-increasing over any usage.
    #[test]
    fn aging_is_irreversible(ops in baat_testkit::collection::vec((0.0f64..400.0, 0u8..3), 1..100)) {
        let mut b = Battery::new(BatterySpec::prototype());
        let dt = SimDuration::from_minutes(5);
        let mut now = SimInstant::START;
        let mut last_damage = 0.0;
        let mut last_capacity = b.effective_capacity().as_f64();
        for (power, kind) in ops {
            let op = match kind {
                0 => BatteryOp::Discharge(Watts::new(power)),
                1 => BatteryOp::Charge(Watts::new(power)),
                _ => BatteryOp::Idle,
            };
            b.step(op, Celsius::new(25.0), now, dt);
            now += dt;
            let d = b.aging().total_damage();
            let c = b.effective_capacity().as_f64();
            prop_assert!(d >= last_damage, "damage must not heal");
            prop_assert!(c <= last_capacity + 1e-12, "capacity must not grow");
            last_damage = d;
            last_capacity = c;
        }
    }

    /// Delivered power never exceeds the request, and accepted power never
    /// exceeds the offer.
    #[test]
    fn power_conservation_at_terminals(power in 0.0f64..500.0, soc0 in 0.05f64..1.0) {
        let mut b = Battery::new(BatterySpec::prototype());
        b.set_soc(Soc::new(soc0).unwrap());
        let dt = SimDuration::from_minutes(1);
        let d = b.step(BatteryOp::Discharge(Watts::new(power)), Celsius::new(25.0), SimInstant::START, dt);
        prop_assert!(d.delivered.as_f64() <= power + 1e-9);
        prop_assert!(d.accepted == Watts::ZERO);

        let mut b2 = Battery::new(BatterySpec::prototype());
        b2.set_soc(Soc::new(soc0 * 0.9).unwrap());
        let c = b2.step(BatteryOp::Charge(Watts::new(power)), Celsius::new(25.0), SimInstant::START, dt);
        prop_assert!(c.accepted.as_f64() <= power + 1e-9);
        prop_assert!(c.delivered == Watts::ZERO);
    }

    /// Cumulative telemetry equals the sum of per-step charge motion.
    #[test]
    fn telemetry_matches_integrated_current(steps in 1u64..100, power in 10.0f64..200.0) {
        let mut b = Battery::new(BatterySpec::prototype());
        let dt = SimDuration::from_minutes(2);
        let mut now = SimInstant::START;
        let mut expected = 0.0;
        for _ in 0..steps {
            let r = b.step(BatteryOp::Discharge(Watts::new(power)), Celsius::new(25.0), now, dt);
            if r.current.as_f64() > 0.0 {
                expected += r.current.as_f64() * dt.as_hours();
            }
            now += dt;
        }
        let recorded = b.telemetry().lifetime().ah_discharged.as_f64();
        prop_assert!((recorded - expected).abs() < 1e-6 * expected.max(1.0),
            "recorded {recorded} expected {expected}");
    }

    /// Cycle-life curves are monotone decreasing in DoD for every
    /// manufacturer.
    #[test]
    fn cycle_life_monotone(d1 in 0.01f64..1.0, d2 in 0.01f64..1.0) {
        prop_assume!(d1 < d2);
        for m in Manufacturer::ALL {
            let n1 = m.cycles_to_eol(Dod::new(d1).unwrap());
            let n2 = m.cycles_to_eol(Dod::new(d2).unwrap());
            prop_assert!(n1 > n2);
        }
    }

    /// Terminal voltage under discharge stays below OCV and above zero for
    /// feasible loads.
    #[test]
    fn discharge_voltage_bounded(power in 1.0f64..300.0, soc0 in 0.3f64..1.0) {
        let mut b = Battery::new(BatterySpec::prototype());
        b.set_soc(Soc::new(soc0).unwrap());
        let ocv = b.open_circuit_voltage();
        let r = b.step(
            BatteryOp::Discharge(Watts::new(power)),
            Celsius::new(25.0),
            SimInstant::START,
            SimDuration::from_secs(30),
        );
        if r.delivered.as_f64() > 0.0 {
            prop_assert!(r.terminal_voltage < ocv);
            prop_assert!(r.terminal_voltage.as_f64() > 0.0);
        }
    }

    /// Stored charge never exceeds effective capacity.
    #[test]
    fn stored_charge_within_capacity(soc0 in 0.0f64..=1.0) {
        let mut b = Battery::new(BatterySpec::prototype());
        b.set_soc(Soc::new(soc0).unwrap());
        prop_assert!(b.stored_charge() <= b.effective_capacity() + AmpHours::new(1e-9));
    }

    /// The memoized cycle-life curve is **bit-identical** to the direct
    /// `powf·exp` formula across the full DoD domain, for every
    /// manufacturer — including cache-hit queries. The pool/index
    /// encoding forces repeated DoDs, so both the miss path and the hit
    /// path are exercised on every case.
    #[test]
    fn memoized_cycle_life_is_bit_identical_to_direct(
        pool in baat_testkit::collection::vec(0.001f64..=1.0, 1..4),
        picks in baat_testkit::collection::vec(0usize..4, 1..40),
    ) {
        for m in Manufacturer::ALL {
            let curve = m.curve();
            let mut memo = MemoizedCycleLife::new(curve);
            for &p in &picks {
                let dod = Dod::new(pool[p % pool.len()]).unwrap();
                let memoized = memo.cycles_to_eol(dod);
                let direct = curve.cycles_to_eol(dod);
                prop_assert_eq!(
                    memoized.to_bits(),
                    direct.to_bits(),
                    "memo diverged at dod {} for {:?}: {} vs {}",
                    dod.value(), m, memoized, direct
                );
                prop_assert_eq!(
                    memo.lifetime_throughput(dod, AmpHours::new(35.0)),
                    curve.lifetime_throughput(dod, AmpHours::new(35.0))
                );
            }
        }
    }

    /// Damage integrated through the Arrhenius-memoizing [`AgingState`]
    /// is **bit-identical** to summing the direct per-sample formula
    /// ([`AgingModel::incremental_damage`], which evaluates the `powf`
    /// fresh every time) across the temperature domain. Temperatures are
    /// drawn from a small pool so consecutive repeats (the memo-hit path)
    /// occur alongside cold misses.
    #[test]
    fn memoized_arrhenius_aging_is_bit_identical_to_direct(
        temps in baat_testkit::collection::vec(-10.0f64..=60.0, 1..4),
        steps in baat_testkit::collection::vec((0usize..4, -20.0f64..20.0, 0.05f64..1.0), 1..60),
    ) {
        let model = AgingModel::new(17_500.0);
        let mut state = AgingState::new(model.clone());
        let mut direct_sum = DamageBreakdown::default();
        let dt = SimDuration::from_minutes(5);
        for &(t, amps, soc) in &steps {
            let current = Amperes::new(amps);
            let moved = AmpHours::new(amps.abs() * dt.as_hours());
            let s = StressSample {
                soc: Soc::new(soc).unwrap(),
                current,
                temperature: Celsius::new(temps[t % temps.len()]),
                dt,
                discharged: if amps > 0.0 { moved } else { AmpHours::ZERO },
                charged: if amps < 0.0 { moved } else { AmpHours::ZERO },
                overcharge: AmpHours::ZERO,
                capacity: AmpHours::new(35.0),
                hours_since_full: 4.0,
            };
            state.apply(&s);
            let inc = model.incremental_damage(&s);
            direct_sum.corrosion += inc.corrosion;
            direct_sum.shedding += inc.shedding;
            direct_sum.sulphation += inc.sulphation;
            direct_sum.water_loss += inc.water_loss;
            direct_sum.stratification += inc.stratification;
        }
        // DamageBreakdown equality is exact f64 equality per mechanism.
        prop_assert_eq!(state.breakdown(), &direct_sum);
        prop_assert_eq!(
            state.total_damage().to_bits(),
            direct_sum.total().to_bits()
        );
    }

    /// Lead-acid driven through the [`BatteryModel`] trait (via
    /// [`AnyBattery`]) is **bit-identical** to the direct pre-trait
    /// [`Battery`] on arbitrary op scripts, for every manufacturer's
    /// cycle-life curve: every step result matches exactly and the final
    /// states compare equal (damage compared at the bit level).
    #[test]
    fn lead_acid_through_trait_is_bit_identical_to_direct(
        ops in baat_testkit::collection::vec((0.0f64..400.0, 0u8..3, 0u8..200), 1..120),
    ) {
        for m in Manufacturer::ALL {
            let throughput =
                m.curve().lifetime_throughput(Dod::new(0.8).unwrap(), AmpHours::new(35.0));
            let spec = BatterySpec::builder()
                .lifetime_throughput(throughput)
                .build()
                .unwrap();
            let mut direct = Battery::new(spec.clone());
            let mut via_trait = AnyBattery::new(spec);
            let dt = SimDuration::from_minutes(5);
            let mut now = SimInstant::START;
            for &(power, kind, ambient_q) in &ops {
                let op = match kind {
                    0 => BatteryOp::Discharge(Watts::new(power)),
                    1 => BatteryOp::Charge(Watts::new(power)),
                    _ => BatteryOp::Idle,
                };
                let ambient = Celsius::new(f64::from(ambient_q) * 0.25 - 5.0);
                let a = direct.step(op, ambient, now, dt);
                let b = BatteryModel::step(&mut via_trait, op, ambient, now, dt);
                prop_assert_eq!(a, b, "step result diverged for {:?}", m);
                now += dt;
            }
            prop_assert_eq!(direct.soc(), via_trait.soc());
            prop_assert_eq!(
                direct.total_damage().to_bits(),
                via_trait.total_damage().to_bits(),
                "damage diverged for {:?}", m
            );
            prop_assert_eq!(direct.open_circuit_voltage(), via_trait.open_circuit_voltage());
            prop_assert_eq!(
                &direct,
                via_trait.as_lead_acid().expect("lead-acid spec builds the lead-acid arm")
            );
        }
    }
}
