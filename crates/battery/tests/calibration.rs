//! Calibration-consistency tests: the damage-accumulation model and the
//! manufacturer cycle-life curves describe the same battery, so cycling
//! the dynamic model to end-of-life must land within shouting distance of
//! the Fig 10 curve (same order of magnitude, right DoD trend).

use baat_battery::{Battery, BatteryOp, BatterySpec, Manufacturer};
use baat_units::{Celsius, Dod, SimDuration, SimInstant, Soc, Watts};

/// Cycles a fresh prototype battery at roughly the given DoD until
/// end-of-life; returns the number of completed cycles (capped).
fn cycles_to_eol(dod: f64, cap: u32) -> u32 {
    let mut battery = Battery::new(BatterySpec::prototype());
    let mut now = SimInstant::START;
    let dt = SimDuration::from_minutes(6);
    let floor = 1.0 - dod;
    for cycle in 0..cap {
        // Discharge at a gentle 0.15C until the target depth.
        for _ in 0..400 {
            if battery.soc().value() <= floor {
                break;
            }
            battery.step(
                BatteryOp::Discharge(Watts::new(60.0)),
                Celsius::new(20.0),
                now,
                dt,
            );
            now += dt;
        }
        // Recharge to full.
        for _ in 0..600 {
            if battery.soc().value() >= 0.995 {
                break;
            }
            battery.step(
                BatteryOp::Charge(Watts::new(100.0)),
                Celsius::new(20.0),
                now,
                dt,
            );
            now += dt;
        }
        if battery.is_end_of_life() {
            return cycle + 1;
        }
    }
    cap
}

#[test]
fn damage_model_agrees_with_cycle_life_curve_at_half_dod() {
    let measured = cycles_to_eol(0.5, 4000);
    let curve = Manufacturer::Trojan.cycles_to_eol(Dod::new(0.5).unwrap());
    // Same battery, two models fit from different data: agreement within
    // a factor of three is the calibration contract.
    assert!(
        (curve / 3.0..curve * 3.0).contains(&f64::from(measured)),
        "dynamic model {measured} cycles vs curve {curve:.0}"
    );
}

#[test]
fn deeper_cycling_reaches_eol_sooner() {
    let shallow = cycles_to_eol(0.3, 6000);
    let deep = cycles_to_eol(0.8, 6000);
    assert!(
        deep < shallow,
        "deep {deep} cycles should be fewer than shallow {shallow}"
    );
}

#[test]
fn pre_age_matches_organic_aging_observables() {
    // A battery pre-aged to damage 0.5 must look like one organically
    // cycled there: same capacity fraction and resistance factor mapping.
    let mut pre = Battery::new(BatterySpec::prototype());
    pre.pre_age(0.5);
    assert!(pre.aging().total_damage() >= 0.5);
    assert!(
        (pre.aging().capacity_fraction() - (1.0 - 0.2 * pre.aging().total_damage())).abs() < 1e-9
    );
    assert!(pre.effective_capacity().as_f64() < 35.0 * 0.92);
    assert!(!pre.is_end_of_life());
    // Pre-aging is idempotent at the target.
    let damage = pre.aging().total_damage();
    pre.pre_age(0.4);
    assert_eq!(pre.aging().total_damage(), damage);
}

#[test]
fn six_months_of_cyclic_use_stays_short_of_eol() {
    // The paper's instrumented battery lost ~14 % capacity in six months
    // of aggressive cycling — worn, but not yet at the 80 % line. Our
    // model must reproduce that head-room.
    let mut battery = Battery::new(BatterySpec::prototype());
    let mut now = SimInstant::START;
    let dt = SimDuration::from_minutes(10);
    for _day in 0..180 {
        for _ in 0..17 {
            battery.step(
                BatteryOp::Discharge(Watts::new(110.0)),
                Celsius::new(27.0),
                now,
                dt,
            );
            now += dt;
        }
        for _ in 0..48 {
            battery.step(
                BatteryOp::Charge(Watts::new(100.0)),
                Celsius::new(27.0),
                now,
                dt,
            );
            now += dt;
        }
        for _ in 0..79 {
            battery.step(BatteryOp::Idle, Celsius::new(27.0), now, dt);
            now += dt;
        }
    }
    let damage = battery.aging().total_damage();
    assert!(
        (0.3..1.0).contains(&damage),
        "six aggressive months should wear substantially without EOL: {damage}"
    );
    let cap = battery.aging().capacity_fraction();
    assert!((0.80..0.95).contains(&cap), "capacity fraction {cap}");
}

#[test]
fn temperature_accelerates_eol() {
    let cycles_at = |temp: f64| -> u32 {
        let mut battery = Battery::new(BatterySpec::prototype());
        let mut now = SimInstant::START;
        let dt = SimDuration::from_minutes(6);
        for cycle in 0..3000u32 {
            for _ in 0..400 {
                if battery.soc().value() <= 0.4 {
                    break;
                }
                battery.step(
                    BatteryOp::Discharge(Watts::new(60.0)),
                    Celsius::new(temp),
                    now,
                    dt,
                );
                now += dt;
            }
            for _ in 0..600 {
                if battery.soc().value() >= 0.995 {
                    break;
                }
                battery.step(
                    BatteryOp::Charge(Watts::new(100.0)),
                    Celsius::new(temp),
                    now,
                    dt,
                );
                now += dt;
            }
            if battery.is_end_of_life() {
                return cycle + 1;
            }
        }
        3000
    };
    let cool = cycles_at(20.0);
    let hot = cycles_at(35.0);
    // §III.E: +10 °C halves lifetime; +15 °C should cost well over 2×.
    assert!(
        f64::from(hot) < f64::from(cool) * 0.55,
        "hot {hot} vs cool {cool}"
    );
}

#[test]
fn soc_floor_of_model_matches_cutoff_behaviour() {
    // Discharging an empty battery delivers nothing but never panics or
    // goes negative.
    let mut battery = Battery::new(BatterySpec::prototype());
    battery.set_soc(Soc::EMPTY);
    let r = battery.step(
        BatteryOp::Discharge(Watts::new(100.0)),
        Celsius::new(25.0),
        SimInstant::START,
        SimDuration::from_minutes(1),
    );
    assert_eq!(r.delivered, Watts::ZERO);
    assert!(r.cutoff);
}
