//! Checkpointable dynamic state of one battery unit.
//!
//! A battery's behaviour is the product of static parameters (the
//! [`BatterySpec`](crate::BatterySpec), the manufacturing variation
//! scales, the aging model) and dynamic state accumulated while
//! stepping. The static side is reproduced bit-identically by
//! re-manufacturing the unit from its configuration and seed, so a
//! checkpoint only needs to carry the dynamic side: that is what
//! [`BatteryUnitState`] holds, for every chemistry, via
//! `capture_state`/`restore_state` on [`Battery`](crate::Battery),
//! [`LiIonBattery`](crate::LiIonBattery) and
//! [`AnyBattery`](crate::AnyBattery).
//!
//! Evaluation caches (dt conversions, Arrhenius factors, cycle-life
//! memos) are deliberately absent: they are exact replay caches, so a
//! restored unit starting from cold caches produces bit-identical
//! results.

use baat_units::{Celsius, Soc};

use crate::chemistry::AgingBreakdown;
use crate::telemetry::{SensorSample, UsageAccumulator};

/// Dynamic state of one battery unit, chemistry-agnostic.
///
/// Captured by `capture_state` and re-applied with `restore_state` onto
/// a freshly manufactured unit of the same spec and variation. The aging
/// damage travels as the chemistry-canonical labelled breakdown
/// ([`AgingBreakdown`]), so the same container round-trips lead-acid's
/// five mechanisms and Li-ion's calendar/cycle pair.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryUnitState {
    /// State of charge.
    pub soc: Soc,
    /// Hours since the unit last reached full charge.
    pub hours_since_full: f64,
    /// Number of discharge requests (partially) refused by the cutoff.
    pub cutoff_events: u64,
    /// Battery surface temperature.
    pub temperature: Celsius,
    /// Per-mechanism accumulated aging damage, chemistry-labelled.
    pub aging: AgingBreakdown,
    /// Full telemetry contents (sample ring + usage accumulators).
    pub telemetry: TelemetryState,
}

/// Checkpointable contents of a [`TelemetryLog`](crate::TelemetryLog).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryState {
    /// Ring capacity the log was built with.
    pub max_samples: usize,
    /// Retained sensor samples, oldest first.
    pub samples: Vec<SensorSample>,
    /// Lifetime usage counters.
    pub lifetime: UsageAccumulator,
    /// Current-window usage counters.
    pub window: UsageAccumulator,
}
