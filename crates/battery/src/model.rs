//! The dynamic battery model: SoC dynamics, charge acceptance, Peukert
//! losses, cutoff behaviour, thermal coupling and aging integration.

use baat_units::{
    AmpHours, Amperes, Celsius, Ohms, Scale, SimDuration, SimInstant, Soc, Volts, WattHours, Watts,
};

use crate::aging::{AgingModel, AgingState, StressSample};
use crate::chemistry::{AgingBreakdown, BatteryModel, Chemistry};
use crate::error::BatteryError;
use crate::spec::BatterySpec;
use crate::telemetry::{SensorSample, TelemetryLog};
use crate::thermal::ThermalModel;
use crate::voltage::{
    charge_current_for_power, discharge_current_for_power, open_circuit_voltage, terminal_voltage,
};

/// SoC at or above which the battery counts as fully recharged.
const FULL_SOC: f64 = 0.99;
/// SoC above which accepted charge starts to gas (overcharge region).
const GASSING_SOC: f64 = 0.90;
/// Peukert-style penalty gain: extra charge drawn per unit C-rate above
/// the knee.
const PEUKERT_GAIN: f64 = 0.12;
/// C-rate below which discharge is essentially loss-free.
const PEUKERT_KNEE: f64 = 0.05;

/// What the power infrastructure asks of the battery during one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatteryOp {
    /// Draw the given power from the battery terminals.
    Discharge(Watts),
    /// Push the given power into the battery terminals.
    Charge(Watts),
    /// Leave the battery disconnected (self-discharge only).
    Idle,
}

/// Outcome of one battery step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Power actually delivered to the load (≤ requested).
    pub delivered: Watts,
    /// Power actually absorbed from the charger (≤ offered).
    pub accepted: Watts,
    /// Terminal voltage during the step.
    pub terminal_voltage: Volts,
    /// Battery current during the step (positive = discharge).
    pub current: Amperes,
    /// `true` if the under-voltage/empty cutoff prevented (part of) the
    /// requested discharge.
    pub cutoff: bool,
}

impl StepResult {
    pub(crate) fn idle(voltage: Volts) -> Self {
        Self {
            delivered: Watts::ZERO,
            accepted: Watts::ZERO,
            terminal_voltage: voltage,
            current: Amperes::ZERO,
            cutoff: false,
        }
    }
}

/// Hour/day conversions of the step length, cached on the raw seconds.
///
/// Every step divides the same `dt` by 3600 and 86 400 several times
/// (coulomb counting, energy integration, self-discharge); simulations
/// step with a fixed `dt`, so the divides are re-evaluated only when the
/// step length changes. A hit replays the exact `f64` a fresh division
/// would produce, and the initial `(0, 0.0, 0.0)` triple is itself exact
/// (`0 / 3600 = 0 / 86 400 = 0.0`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DtMemo {
    dt_secs: u64,
    hours: f64,
    days: f64,
}

impl Default for DtMemo {
    fn default() -> Self {
        Self {
            dt_secs: 0,
            hours: 0.0,
            days: 0.0,
        }
    }
}

impl DtMemo {
    pub(crate) fn refresh(&mut self, dt: SimDuration) -> (f64, f64) {
        if dt.as_secs() != self.dt_secs {
            self.dt_secs = dt.as_secs();
            self.hours = dt.as_hours();
            self.days = dt.as_days();
        }
        (self.hours, self.days)
    }
}

/// A single sealed lead-acid battery unit with aging.
///
/// `Battery` is the lead-acid implementation of the
/// [`BatteryModel`] trait; chemistry-generic code should accept
/// `impl BatteryModel` (or [`AnyBattery`](crate::AnyBattery)) instead of
/// this concrete type. The inherent methods remain for lead-acid-specific
/// callers and behave identically to their trait counterparts.
///
/// # Examples
///
/// ```
/// use baat_battery::{Battery, BatteryOp, BatterySpec};
/// use baat_units::{Celsius, SimDuration, SimInstant, Watts};
///
/// let mut battery = Battery::new(BatterySpec::prototype());
/// let result = battery.step(
///     BatteryOp::Discharge(Watts::new(60.0)),
///     Celsius::new(25.0),
///     SimInstant::START,
///     SimDuration::from_minutes(10),
/// );
/// assert!(result.delivered.as_f64() > 0.0);
/// assert!(battery.soc() < baat_units::Soc::FULL);
/// ```
#[derive(Debug, Clone)]
pub struct Battery {
    spec: BatterySpec,
    aging: AgingState,
    thermal: ThermalModel,
    telemetry: TelemetryLog,
    soc: Soc,
    hours_since_full: f64,
    capacity_scale: f64,
    cutoff_events: u64,
    dt_memo: DtMemo,
}

/// Equality is semantic — spec, electrochemical state, telemetry and
/// usage history. The dt conversion memo is a pure evaluation cache and
/// never distinguishes two batteries.
impl PartialEq for Battery {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.aging == other.aging
            && self.thermal == other.thermal
            && self.telemetry == other.telemetry
            && self.soc == other.soc
            && self.hours_since_full == other.hours_since_full
            && self.capacity_scale == other.capacity_scale
            && self.cutoff_events == other.cutoff_events
    }
}

impl Battery {
    /// Creates a fully charged, brand-new battery.
    pub fn new(spec: BatterySpec) -> Self {
        let aging = AgingState::new(AgingModel::new(spec.lifetime_throughput().as_f64()));
        Self::with_aging(spec, aging, Scale::ONE)
    }

    /// Creates a battery with explicit aging state and a unit-to-unit
    /// capacity scale (manufacturing variation; [`Scale::ONE`] =
    /// nominal). The [`Scale`] newtype guarantees the multiplier is
    /// positive and finite.
    pub fn with_aging(spec: BatterySpec, aging: AgingState, capacity_scale: Scale) -> Self {
        let thermal = ThermalModel::new(
            spec.ambient(),
            spec.thermal_resistance(),
            spec.thermal_time_constant_s(),
        );
        Self {
            spec,
            aging,
            thermal,
            telemetry: TelemetryLog::default(),
            soc: Soc::FULL,
            hours_since_full: 0.0,
            capacity_scale: capacity_scale.value(),
            cutoff_events: 0,
            dt_memo: DtMemo::default(),
        }
    }

    /// The static specification.
    pub fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    /// Current state of charge (relative to the *effective* capacity).
    pub fn soc(&self) -> Soc {
        self.soc
    }

    /// Overrides the state of charge (e.g. to start an experiment from a
    /// partially charged battery).
    pub fn set_soc(&mut self, soc: Soc) {
        self.soc = soc;
        if soc.value() >= FULL_SOC {
            self.hours_since_full = 0.0;
        }
    }

    /// Effective capacity after aging and manufacturing variation.
    pub fn effective_capacity(&self) -> AmpHours {
        self.spec.capacity() * (self.aging.capacity_fraction() * self.capacity_scale)
    }

    /// Charge currently stored.
    pub fn stored_charge(&self) -> AmpHours {
        self.effective_capacity() * self.soc.value()
    }

    /// Present internal resistance (grows with aging).
    pub fn internal_resistance(&self) -> Ohms {
        self.spec.internal_resistance() * self.aging.resistance_factor()
    }

    /// Present open-circuit voltage.
    pub fn open_circuit_voltage(&self) -> Volts {
        open_circuit_voltage(
            self.spec.nominal_voltage(),
            self.soc,
            self.aging.ocv_factor(),
        )
    }

    /// Battery surface temperature.
    pub fn temperature(&self) -> Celsius {
        self.thermal.temperature()
    }

    /// Accumulated aging state.
    pub fn aging(&self) -> &AgingState {
        &self.aging
    }

    /// Telemetry log (sensor samples + usage accumulators).
    pub fn telemetry(&self) -> &TelemetryLog {
        &self.telemetry
    }

    /// Mutable telemetry access (for window resets by the controller).
    pub fn telemetry_mut(&mut self) -> &mut TelemetryLog {
        &mut self.telemetry
    }

    /// Number of discharge requests (partially) refused by the cutoff.
    pub fn cutoff_events(&self) -> u64 {
        self.cutoff_events
    }

    /// `true` once effective capacity has fallen to 80 % of initial.
    pub fn is_end_of_life(&self) -> bool {
        self.aging.is_end_of_life()
    }

    /// Hours since the battery last reached full charge.
    pub fn hours_since_full(&self) -> f64 {
        self.hours_since_full
    }

    /// How long the battery could sustain the given terminal power draw
    /// before running empty — the quantity behind the paper's 2-minute
    /// emergency-reserve rule (§VI.E, Fig 9's `P_threshold`).
    ///
    /// Returns `None` if the battery cannot deliver `power` at all right
    /// now (cutoff or current limit).
    pub fn reserve_duration(&self, power: Watts) -> Option<SimDuration> {
        if power.as_f64() <= 0.0 {
            return Some(SimDuration::from_days(36_500));
        }
        if power > self.available_discharge_power() {
            return None;
        }
        let ocv = self.open_circuit_voltage();
        let current = discharge_current_for_power(power.as_f64(), ocv, self.internal_resistance())?;
        if current.as_f64() <= 0.0 {
            return None;
        }
        let hours = self.stored_charge().as_f64() / current.as_f64();
        Some(SimDuration::from_secs((hours * 3600.0) as u64))
    }

    /// Maximum power the battery can deliver *right now* without tripping
    /// the under-voltage cutoff or the maximum discharge current.
    pub fn available_discharge_power(&self) -> Watts {
        self.available_discharge_power_at(self.open_circuit_voltage(), self.internal_resistance())
    }

    /// [`Battery::available_discharge_power`] with the present OCV and
    /// internal resistance supplied by the caller, so the step loop can
    /// reuse values it already derived.
    fn available_discharge_power_at(&self, ocv: Volts, r: Ohms) -> Watts {
        if self.soc == Soc::EMPTY {
            return Watts::ZERO;
        }
        // Current at which terminal voltage hits the cutoff.
        let i_cutoff = ((ocv - self.spec.cutoff_voltage()).as_f64() / r.as_f64()).max(0.0);
        let i_max = i_cutoff.min(self.spec.max_discharge_current().as_f64());
        let i = Amperes::new(i_max);
        let v = terminal_voltage(ocv, i, r);
        (i * v).max(Watts::ZERO)
    }

    /// Synthetically ages the battery to approximately the given total
    /// damage by applying representative cycling stress, without touching
    /// telemetry. Used to start experiments from the paper's "old"
    /// battery stage (§VI.B runs the same comparison in April on new
    /// batteries and in October on aged ones).
    ///
    /// Does nothing if the battery already has at least `target_damage`.
    pub fn pre_age(&mut self, target_damage: f64) {
        let stress = StressSample {
            soc: Soc::saturating(0.55),
            current: Amperes::new(self.spec.capacity().as_f64() * 0.2),
            temperature: Celsius::new(27.0),
            dt: SimDuration::from_hours(1),
            discharged: AmpHours::new(self.spec.capacity().as_f64() * 0.2),
            charged: AmpHours::ZERO,
            overcharge: AmpHours::ZERO,
            capacity: self.spec.capacity(),
            hours_since_full: 10.0,
        };
        let mut guard = 0u32;
        while self.aging.total_damage() < target_damage && guard < 1_000_000 {
            self.aging.apply(&stress);
            guard += 1;
        }
    }

    /// Captures the unit's dynamic state for checkpointing.
    ///
    /// The static side (spec, variation scales, aging model) is not
    /// included: a restore target is re-manufactured from configuration
    /// and seed, then [`Battery::restore_state`] overwrites the dynamic
    /// side. Evaluation memos are excluded by design — they are exact
    /// replay caches.
    pub fn capture_state(&self) -> crate::state::BatteryUnitState {
        crate::state::BatteryUnitState {
            soc: self.soc,
            hours_since_full: self.hours_since_full,
            cutoff_events: self.cutoff_events,
            temperature: self.thermal.temperature(),
            aging: self.aging_breakdown(),
            telemetry: self.telemetry.capture(),
        }
    }

    /// Re-applies a captured dynamic state onto this unit.
    ///
    /// The unit must have been manufactured from the same spec and
    /// variation as the captured one; restoring then replays
    /// bit-identically to the original. Aging mechanisms absent from the
    /// captured breakdown restore as zero damage.
    pub fn restore_state(&mut self, state: &crate::state::BatteryUnitState) {
        self.soc = state.soc;
        self.hours_since_full = state.hours_since_full;
        self.cutoff_events = state.cutoff_events;
        self.thermal.set_temperature(state.temperature);
        let get = |label| state.aging.get(label).unwrap_or(0.0);
        self.aging.restore_damage(crate::aging::DamageBreakdown {
            corrosion: get("corrosion"),
            shedding: get("shedding"),
            sulphation: get("sulphation"),
            water_loss: get("water_loss"),
            stratification: get("stratification"),
        });
        self.telemetry = TelemetryLog::restore(&state.telemetry);
    }

    /// Advances the battery one simulation step.
    ///
    /// Applies the requested operation (respecting cutoff, current limits
    /// and charge acceptance), updates SoC, temperature, telemetry and
    /// aging, and returns what actually happened.
    ///
    /// # Panics
    ///
    /// Panics if the requested power is not finite. Callers whose power
    /// requests come from untrusted paths (e.g. fault injection) should
    /// use [`Battery::try_step`] and handle the typed error.
    pub fn step(
        &mut self,
        op: BatteryOp,
        ambient: Celsius,
        now: SimInstant,
        dt: SimDuration,
    ) -> StepResult {
        self.try_step(op, ambient, now, dt)
            .expect("power request must be finite")
    }

    /// Advances the battery one simulation step, rejecting degenerate
    /// requests with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::NonFinitePower`] when the charge or
    /// discharge request is `NaN` or infinite — the quadratic current
    /// solvers would otherwise poison SoC and aging with `NaN`. The
    /// battery state is untouched on error.
    pub fn try_step(
        &mut self,
        op: BatteryOp,
        ambient: Celsius,
        now: SimInstant,
        dt: SimDuration,
    ) -> Result<StepResult, BatteryError> {
        if let BatteryOp::Discharge(p) | BatteryOp::Charge(p) = op {
            if !p.as_f64().is_finite() {
                return Err(BatteryError::NonFinitePower {
                    requested_w: p.as_f64(),
                });
            }
        }
        let (dt_hours, dt_days) = self.dt_memo.refresh(dt);
        // OCV and internal resistance are pure functions of SoC and
        // aging, neither of which changes before the operation arms read
        // them — compute both once and share. The reported voltage is
        // still recomputed from post-step state at the end.
        let ocv = self.open_circuit_voltage();
        let r = self.internal_resistance();
        let mut result = match op {
            BatteryOp::Discharge(power) => self.apply_discharge(power, ocv, r, dt_hours),
            BatteryOp::Charge(power) => self.apply_charge(power, ocv, r, dt_hours),
            BatteryOp::Idle => StepResult::idle(ocv),
        };

        // Self-discharge applies regardless of operation.
        let leak = self.spec.self_discharge_per_day().value() * dt_days;
        self.soc = Soc::saturating(self.soc.value() - leak);

        // Thermal update feeds the aging temperature factor. The
        // operation arms never touch aging, so `r` is still current.
        let temp = self.thermal.step(result.current, r, ambient, dt);

        // Track recharge staleness.
        if self.soc.value() >= FULL_SOC {
            if self.hours_since_full > 0.0 {
                self.telemetry.record_full_charge();
            }
            self.hours_since_full = 0.0;
        } else {
            self.hours_since_full += dt_hours;
        }

        // Aging integration.
        let (discharged, charged, overcharge) = self.step_charges(&result, dt_hours);
        let stress = StressSample {
            soc: self.soc,
            current: result.current,
            temperature: temp,
            dt,
            discharged,
            charged,
            overcharge,
            capacity: self.spec.capacity(),
            hours_since_full: self.hours_since_full,
        };
        self.aging.apply(&stress);

        // Telemetry.
        let energy_out = WattHours::new(result.delivered.as_f64() * dt_hours);
        let energy_in = WattHours::new(result.accepted.as_f64() * dt_hours);
        self.telemetry.record(
            self.soc,
            result.current,
            discharged,
            charged,
            energy_out,
            energy_in,
            dt,
        );
        self.telemetry.push_sample(SensorSample {
            at: now,
            voltage: result.terminal_voltage,
            current: result.current,
            temperature: temp,
            soc: self.soc,
        });

        // Recompute voltage with post-step SoC for reporting accuracy.
        result.terminal_voltage = terminal_voltage(
            self.open_circuit_voltage(),
            result.current,
            self.internal_resistance(),
        );
        Ok(result)
    }

    fn step_charges(&self, result: &StepResult, dt_hours: f64) -> (AmpHours, AmpHours, AmpHours) {
        let i = result.current.as_f64();
        if i > 0.0 {
            (AmpHours::new(i * dt_hours), AmpHours::ZERO, AmpHours::ZERO)
        } else if i < 0.0 {
            let charged = AmpHours::new(-i * dt_hours);
            // Charge pushed in past the gassing knee vents as overcharge;
            // gassing onsets quadratically toward full.
            let over = if self.soc.value() >= GASSING_SOC {
                let frac = ((self.soc.value() - GASSING_SOC) / (1.0 - GASSING_SOC)).min(1.0);
                charged * (frac * frac)
            } else {
                AmpHours::ZERO
            };
            (AmpHours::ZERO, charged, over)
        } else {
            (AmpHours::ZERO, AmpHours::ZERO, AmpHours::ZERO)
        }
    }

    fn apply_discharge(&mut self, power: Watts, ocv: Volts, r: Ohms, dt_hours: f64) -> StepResult {
        if power.as_f64() <= 0.0 {
            return StepResult::idle(ocv);
        }
        let available = self.available_discharge_power_at(ocv, r);
        let mut cutoff = false;
        let granted = if power > available {
            cutoff = true;
            self.cutoff_events += 1;
            available
        } else {
            power
        };
        if granted.as_f64() <= 0.0 {
            return StepResult {
                cutoff: true,
                ..StepResult::idle(ocv)
            };
        }
        let current = discharge_current_for_power(granted.as_f64(), ocv, r)
            .unwrap_or(self.spec.max_discharge_current());

        // Peukert-style rate penalty: high C-rates drain extra charge.
        let c_rate = current.as_f64() / self.spec.capacity().as_f64();
        let peukert =
            1.0 + PEUKERT_GAIN * ((c_rate - PEUKERT_KNEE).max(0.0) / (1.0 - PEUKERT_KNEE));
        let drawn = AmpHours::new(current.as_f64() * peukert * dt_hours);

        let capacity = self.effective_capacity();
        let stored = capacity * self.soc.value();
        let (actual_drawn, delivered, current, cutoff) = if drawn > stored {
            // Battery runs empty mid-step: deliver the pro-rated fraction.
            let frac = stored / drawn;
            self.cutoff_events += 1;
            (
                stored,
                granted * frac,
                Amperes::new(current.as_f64() * frac),
                true,
            )
        } else {
            (drawn, granted, current, cutoff)
        };
        self.soc = Soc::saturating(self.soc.value() - actual_drawn / capacity);
        StepResult {
            delivered,
            accepted: Watts::ZERO,
            terminal_voltage: terminal_voltage(ocv, current, r),
            current,
            cutoff,
        }
    }

    /// Accumulated damage across all five lead-acid mechanisms.
    pub fn total_damage(&self) -> f64 {
        self.aging.total_damage()
    }

    /// Remaining capacity as a fraction of initial capacity.
    pub fn capacity_fraction(&self) -> f64 {
        self.aging.capacity_fraction()
    }

    /// The five-mechanism damage breakdown in chemistry-agnostic form.
    pub fn aging_breakdown(&self) -> AgingBreakdown {
        AgingBreakdown::from(self.aging.breakdown())
    }

    fn apply_charge(&mut self, power: Watts, ocv: Volts, r: Ohms, dt_hours: f64) -> StepResult {
        if power.as_f64() <= 0.0 || self.soc.value() >= 1.0 {
            return StepResult::idle(ocv);
        }

        // Charge-acceptance taper: current limit shrinks near full.
        let headroom = (1.0 - self.soc.value()) / (1.0 - GASSING_SOC);
        let taper = headroom.min(1.0);
        let i_limit = self.spec.max_charge_current().as_f64() * taper;
        if i_limit <= 0.0 {
            return StepResult::idle(ocv);
        }

        // Charging terminal voltage is above OCV: V = OCV + I·R.
        // Solve P = I·(OCV + I·R) for I, then clamp to the acceptance
        // limit. `try_step` already rejected non-finite power, so a
        // degenerate solve cannot occur; the limit is a safe fallback.
        let i_for_power =
            charge_current_for_power(power.as_f64(), ocv, r).map_or(i_limit, |a| a.as_f64());
        let i = i_for_power.min(i_limit);
        let current = Amperes::new(-i);
        let v_term = terminal_voltage(ocv, current, r);
        let accepted = Watts::new(i * v_term.as_f64());

        // Coulombic efficiency: a fraction of the charge becomes heat/gas.
        let stored_ah = i * dt_hours * self.spec.coulombic_efficiency().value();
        let capacity = self.effective_capacity();
        self.soc = Soc::saturating(self.soc.value() + stored_ah / capacity.as_f64());
        StepResult {
            delivered: Watts::ZERO,
            accepted,
            terminal_voltage: v_term,
            current,
            cutoff: false,
        }
    }
}

/// The lead-acid chemistry behind the [`BatteryModel`] seam.
///
/// Every method delegates to the corresponding inherent method (written
/// `Battery::method(self, ..)` so resolution cannot recurse into the
/// trait), which keeps the trait path bit-identical to direct use.
impl BatteryModel for Battery {
    fn chemistry(&self) -> Chemistry {
        Chemistry::LeadAcid
    }

    fn spec(&self) -> &BatterySpec {
        Battery::spec(self)
    }

    fn soc(&self) -> Soc {
        Battery::soc(self)
    }

    fn set_soc(&mut self, soc: Soc) {
        Battery::set_soc(self, soc);
    }

    fn effective_capacity(&self) -> AmpHours {
        Battery::effective_capacity(self)
    }

    fn stored_charge(&self) -> AmpHours {
        Battery::stored_charge(self)
    }

    fn internal_resistance(&self) -> Ohms {
        Battery::internal_resistance(self)
    }

    fn open_circuit_voltage(&self) -> Volts {
        Battery::open_circuit_voltage(self)
    }

    fn temperature(&self) -> Celsius {
        Battery::temperature(self)
    }

    fn telemetry(&self) -> &TelemetryLog {
        Battery::telemetry(self)
    }

    fn telemetry_mut(&mut self) -> &mut TelemetryLog {
        Battery::telemetry_mut(self)
    }

    fn cutoff_events(&self) -> u64 {
        Battery::cutoff_events(self)
    }

    fn hours_since_full(&self) -> f64 {
        Battery::hours_since_full(self)
    }

    fn total_damage(&self) -> f64 {
        Battery::total_damage(self)
    }

    fn capacity_fraction(&self) -> f64 {
        Battery::capacity_fraction(self)
    }

    fn aging_breakdown(&self) -> AgingBreakdown {
        Battery::aging_breakdown(self)
    }

    fn is_end_of_life(&self) -> bool {
        Battery::is_end_of_life(self)
    }

    fn reserve_duration(&self, power: Watts) -> Option<SimDuration> {
        Battery::reserve_duration(self, power)
    }

    fn available_discharge_power(&self) -> Watts {
        Battery::available_discharge_power(self)
    }

    fn pre_age(&mut self, target_damage: f64) {
        Battery::pre_age(self, target_damage);
    }

    fn try_step(
        &mut self,
        op: BatteryOp,
        ambient: Celsius,
        now: SimInstant,
        dt: SimDuration,
    ) -> Result<StepResult, BatteryError> {
        Battery::try_step(self, op, ambient, now, dt)
    }

    fn step(
        &mut self,
        op: BatteryOp,
        ambient: Celsius,
        now: SimInstant,
        dt: SimDuration,
    ) -> StepResult {
        Battery::step(self, op, ambient, now, dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn battery() -> Battery {
        Battery::new(BatterySpec::prototype())
    }

    fn run(b: &mut Battery, op: BatteryOp, steps: u64, dt_secs: u64) -> Vec<StepResult> {
        let mut now = SimInstant::START;
        let dt = SimDuration::from_secs(dt_secs);
        (0..steps)
            .map(|_| {
                let r = b.step(op, Celsius::new(25.0), now, dt);
                now += dt;
                r
            })
            .collect()
    }

    #[test]
    fn non_finite_power_is_a_typed_error_and_leaves_state_untouched() {
        let mut b = battery();
        let before = b.clone();
        for p in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for op in [
                BatteryOp::Discharge(Watts::new(p)),
                BatteryOp::Charge(Watts::new(p)),
            ] {
                let err = b
                    .try_step(
                        op,
                        Celsius::new(25.0),
                        SimInstant::START,
                        SimDuration::from_minutes(1),
                    )
                    .unwrap_err();
                assert!(
                    matches!(err, crate::BatteryError::NonFinitePower { requested_w } if !requested_w.is_finite())
                );
            }
        }
        assert_eq!(b, before, "a rejected step must not mutate the battery");
    }

    #[test]
    fn new_battery_is_full_and_healthy() {
        let b = battery();
        assert_eq!(b.soc(), Soc::FULL);
        assert!((b.effective_capacity().as_f64() - 35.0).abs() < 1e-9);
        assert!(!b.is_end_of_life());
        assert_eq!(b.cutoff_events(), 0);
    }

    #[test]
    fn discharge_reduces_soc_by_coulomb_count() {
        let mut b = battery();
        // ~60 W at ~12.5 V ≈ 4.8 A for 1 h ≈ 4.9 Ah of 35 Ah ≈ 14 %.
        run(&mut b, BatteryOp::Discharge(Watts::new(60.0)), 360, 10);
        let soc = b.soc().value();
        assert!((0.80..0.92).contains(&soc), "soc {soc}");
    }

    #[test]
    fn charge_restores_soc_with_efficiency_loss() {
        let mut b = battery();
        run(&mut b, BatteryOp::Discharge(Watts::new(100.0)), 360, 10);
        let low = b.soc().value();
        run(&mut b, BatteryOp::Charge(Watts::new(100.0)), 720, 10);
        assert!(b.soc().value() > low);
        // Energy in exceeds energy out for a full round trip.
        let acc = b.telemetry().lifetime();
        assert!(acc.energy_in.as_f64() > acc.energy_out.as_f64() * 0.8);
    }

    #[test]
    fn deep_discharge_hits_cutoff_not_negative_soc() {
        let mut b = battery();
        let results = run(&mut b, BatteryOp::Discharge(Watts::new(300.0)), 2000, 10);
        assert!(b.soc().value() >= 0.0);
        assert!(results.iter().any(|r| r.cutoff));
        assert!(b.cutoff_events() > 0);
        // Once empty, nothing more is delivered.
        let last = results.last().unwrap();
        assert_eq!(last.delivered, Watts::ZERO);
    }

    #[test]
    fn terminal_voltage_sags_under_load() {
        let mut b = battery();
        let idle_v = b.open_circuit_voltage();
        let r = run(&mut b, BatteryOp::Discharge(Watts::new(150.0)), 1, 10);
        assert!(r[0].terminal_voltage < idle_v);
    }

    #[test]
    fn charging_voltage_rises_above_ocv() {
        let mut b = battery();
        b.set_soc(Soc::new(0.5).unwrap());
        let ocv = b.open_circuit_voltage();
        let r = run(&mut b, BatteryOp::Charge(Watts::new(100.0)), 1, 10);
        assert!(r[0].terminal_voltage > ocv);
        assert!(r[0].current.as_f64() < 0.0);
    }

    #[test]
    fn charge_acceptance_tapers_near_full() {
        let mut b = battery();
        b.set_soc(Soc::new(0.5).unwrap());
        let mid = run(&mut b, BatteryOp::Charge(Watts::new(200.0)), 1, 10)[0].accepted;
        b.set_soc(Soc::new(0.97).unwrap());
        let near_full = run(&mut b, BatteryOp::Charge(Watts::new(200.0)), 1, 10)[0].accepted;
        assert!(near_full < mid * 0.5, "mid {mid} near_full {near_full}");
    }

    #[test]
    fn full_battery_accepts_nothing() {
        let mut b = battery();
        let r = run(&mut b, BatteryOp::Charge(Watts::new(100.0)), 1, 10);
        assert_eq!(r[0].accepted, Watts::ZERO);
    }

    #[test]
    fn idle_battery_self_discharges_slowly() {
        let mut b = battery();
        run(&mut b, BatteryOp::Idle, 24 * 6, 600); // one day in 10-min steps
        let soc = b.soc().value();
        assert!(soc < 1.0 && soc > 0.995, "soc {soc}");
    }

    #[test]
    fn sustained_cycling_ages_the_battery() {
        let mut b = battery();
        // 30 aggressive full-ish cycles.
        for _ in 0..30 {
            run(&mut b, BatteryOp::Discharge(Watts::new(200.0)), 90, 60);
            run(&mut b, BatteryOp::Charge(Watts::new(200.0)), 150, 60);
        }
        assert!(b.aging().total_damage() > 0.01);
        assert!(b.effective_capacity() < AmpHours::new(35.0));
        assert!(b.internal_resistance() > BatterySpec::prototype().internal_resistance());
    }

    #[test]
    fn hours_since_full_resets_on_full_recharge() {
        let mut b = battery();
        run(&mut b, BatteryOp::Discharge(Watts::new(100.0)), 60, 60);
        assert!(b.hours_since_full() > 0.0);
        run(&mut b, BatteryOp::Charge(Watts::new(150.0)), 600, 60);
        assert_eq!(b.hours_since_full(), 0.0);
        assert!(b.telemetry().lifetime().full_charge_events >= 1);
    }

    #[test]
    fn reserve_duration_tracks_charge_and_power() {
        let mut b = battery();
        // A full 35 Ah battery at ~60 W (≈5 A) lasts ~7 h.
        let full = b.reserve_duration(Watts::new(60.0)).unwrap();
        assert!((6.0..8.5).contains(&full.as_hours()), "{full}");
        // Half charge → roughly half the reserve.
        b.set_soc(Soc::new(0.5).unwrap());
        let half = b.reserve_duration(Watts::new(60.0)).unwrap();
        assert!(half < full);
        assert!((half.as_hours() * 2.0 - full.as_hours()).abs() < 1.0);
        // Nearly empty at high power: beyond the 2-minute rule.
        b.set_soc(Soc::new(0.01).unwrap());
        // Cutoff may refuse the draw entirely (None) — also fine.
        if let Some(d) = b.reserve_duration(Watts::new(150.0)) {
            assert!(d < SimDuration::from_minutes(10), "{d}");
        }
        // Zero draw: effectively unbounded.
        assert!(b.reserve_duration(Watts::ZERO).unwrap() > SimDuration::from_days(1000));
    }

    #[test]
    fn undeliverable_power_has_no_reserve() {
        let b = battery();
        assert!(b.reserve_duration(Watts::new(50_000.0)).is_none());
    }

    #[test]
    fn available_power_drops_with_soc() {
        let mut b = battery();
        let full = b.available_discharge_power();
        b.set_soc(Soc::new(0.2).unwrap());
        let low = b.available_discharge_power();
        assert!(low < full);
        b.set_soc(Soc::EMPTY);
        assert_eq!(b.available_discharge_power(), Watts::ZERO);
    }

    #[test]
    fn aged_battery_stores_less_energy_per_cycle() {
        // Fig 4's mechanism: effective capacity fades with damage.
        let spec = BatterySpec::prototype();
        let mut aged = AgingState::new(AgingModel::new(spec.lifetime_throughput().as_f64()));
        let stress = StressSample {
            soc: Soc::new(0.3).unwrap(),
            current: Amperes::new(10.0),
            temperature: Celsius::new(30.0),
            dt: SimDuration::from_hours(1),
            discharged: AmpHours::new(10.0),
            charged: AmpHours::ZERO,
            overcharge: AmpHours::ZERO,
            capacity: AmpHours::new(35.0),
            hours_since_full: 12.0,
        };
        for _ in 0..400 {
            aged.apply(&stress);
        }
        let b = Battery::with_aging(spec, aged, Scale::ONE);
        assert!(b.effective_capacity().as_f64() < 35.0 * 0.95);
    }
}
