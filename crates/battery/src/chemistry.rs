//! Pluggable battery chemistry: the [`BatteryModel`] trait and the
//! [`AnyBattery`] static dispatcher.
//!
//! BAAT's measurements are taken on sealed lead-acid units (§V.A), but
//! battery-model choice materially changes datacenter-level conclusions,
//! so the energy-storage substrate is an extension point: every consumer
//! (engine, policies, cost model, figures) programs against
//! [`BatteryModel`], and a [`Chemistry`] selects the implementation at
//! configuration time.
//!
//! # Determinism contract
//!
//! Implementations must be pure state machines over their inputs: given
//! the same construction parameters and the same op/ambient/time/dt
//! sequence, every observable (SoC, terminal voltage, aging, telemetry)
//! must replay bit-identically, on any thread. Internal caches
//! (dt conversions, Arrhenius factors, cycle-life memos) must be exact
//! replay caches — a hit returns the same `f64` a fresh evaluation would
//! — and must be excluded from `PartialEq`.

use baat_units::{AmpHours, Celsius, Ohms, SimDuration, SimInstant, Soc, Volts, Watts};

use crate::error::BatteryError;
use crate::liion::LiIonBattery;
use crate::model::{Battery, BatteryOp, StepResult};
use crate::spec::BatterySpec;
use crate::telemetry::TelemetryLog;

/// Maximum number of aging mechanisms any chemistry reports.
///
/// Lead-acid uses all five (§II.B); Li-ion uses two (calendar + cycle).
pub const MAX_AGING_MECHANISMS: usize = 5;

/// The battery chemistries the workspace can simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Chemistry {
    /// Sealed (VRLA) lead-acid — the paper's prototype hardware.
    #[default]
    LeadAcid,
    /// Li-ion (LFP-flavoured) equivalent-circuit model with calendar +
    /// cycle aging.
    LiIon,
}

impl Chemistry {
    /// Every supported chemistry, lead-acid first.
    pub const ALL: [Chemistry; 2] = [Chemistry::LeadAcid, Chemistry::LiIon];

    /// Stable lowercase name, used in CLI flags and run metadata.
    pub fn name(self) -> &'static str {
        match self {
            Chemistry::LeadAcid => "lead-acid",
            Chemistry::LiIon => "li-ion",
        }
    }

    /// Parses the [`Chemistry::name`] form (`lead-acid` / `li-ion`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lead-acid" | "lead_acid" | "pb" => Some(Chemistry::LeadAcid),
            "li-ion" | "li_ion" | "liion" => Some(Chemistry::LiIon),
            _ => None,
        }
    }

    /// Aging-mechanism labels this chemistry reports, in breakdown order.
    pub fn aging_labels(self) -> &'static [&'static str] {
        match self {
            Chemistry::LeadAcid => &[
                "corrosion",
                "shedding",
                "sulphation",
                "water_loss",
                "stratification",
            ],
            Chemistry::LiIon => &["calendar", "cycle"],
        }
    }

    /// Fully-qualified gauge names for [`crate::AgingObs`], matching
    /// [`Chemistry::aging_labels`] element-for-element.
    pub(crate) fn aging_gauge_names(self) -> &'static [&'static str] {
        match self {
            Chemistry::LeadAcid => &[
                "battery.aging.corrosion",
                "battery.aging.shedding",
                "battery.aging.sulphation",
                "battery.aging.water_loss",
                "battery.aging.stratification",
            ],
            Chemistry::LiIon => &["battery.aging.calendar", "battery.aging.cycle"],
        }
    }
}

impl core::fmt::Display for Chemistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Chemistry-agnostic per-mechanism damage breakdown: up to
/// [`MAX_AGING_MECHANISMS`] labelled damage totals.
///
/// Lead-acid reports the five §II.B mechanisms in
/// [`crate::DamageBreakdown::iter`] order; Li-ion reports
/// `calendar`/`cycle`. The default value is empty (no mechanisms) and
/// acts as the identity for [`AgingBreakdown::accumulate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AgingBreakdown {
    len: usize,
    labels: [&'static str; MAX_AGING_MECHANISMS],
    values: [f64; MAX_AGING_MECHANISMS],
}

impl AgingBreakdown {
    /// Builds a breakdown from `(label, damage)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_AGING_MECHANISMS`] pairs are given.
    pub fn from_pairs(pairs: &[(&'static str, f64)]) -> Self {
        assert!(
            pairs.len() <= MAX_AGING_MECHANISMS,
            "at most {MAX_AGING_MECHANISMS} aging mechanisms"
        );
        let mut out = Self::default();
        for &(label, value) in pairs {
            out.labels[out.len] = label;
            out.values[out.len] = value;
            out.len += 1;
        }
        out
    }

    /// Number of mechanisms reported.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no mechanisms are reported (the default value).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over `(mechanism label, damage)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.labels[..self.len]
            .iter()
            .copied()
            .zip(self.values[..self.len].iter().copied())
    }

    /// Total damage across all mechanisms.
    pub fn total(&self) -> f64 {
        self.values[..self.len].iter().sum()
    }

    /// Damage for one labelled mechanism, if present.
    pub fn get(&self, label: &str) -> Option<f64> {
        self.iter().find(|(l, _)| *l == label).map(|(_, v)| v)
    }

    /// Adds `other`'s per-mechanism damage into `self`. An empty `self`
    /// adopts `other`'s labels; otherwise the label sets must match
    /// (aggregation is only meaningful within one chemistry).
    pub fn accumulate(&mut self, other: &AgingBreakdown) {
        if self.len == 0 {
            *self = *other;
            return;
        }
        debug_assert_eq!(
            self.labels[..self.len],
            other.labels[..other.len],
            "cannot aggregate breakdowns across chemistries"
        );
        for (v, o) in self.values[..self.len]
            .iter_mut()
            .zip(other.values[..other.len].iter())
        {
            *v += *o;
        }
    }

    /// Per-mechanism difference `self − earlier` (same label set).
    pub fn delta(&self, earlier: &AgingBreakdown) -> AgingBreakdown {
        debug_assert_eq!(self.labels[..self.len], earlier.labels[..earlier.len]);
        let mut out = *self;
        for (v, e) in out.values[..out.len]
            .iter_mut()
            .zip(earlier.values[..earlier.len].iter())
        {
            *v -= *e;
        }
        out
    }
}

impl From<&crate::aging::DamageBreakdown> for AgingBreakdown {
    fn from(d: &crate::aging::DamageBreakdown) -> Self {
        let mut out = Self::default();
        for (label, value) in d.iter() {
            out.labels[out.len] = label;
            out.values[out.len] = value;
            out.len += 1;
        }
        out
    }
}

/// The pluggable battery-model contract: step dynamics, OCV/terminal
/// voltage, charge acceptance, aging integration and telemetry
/// obligations behind one deterministic interface.
///
/// Implementations must uphold the module-level determinism contract.
/// Telemetry obligations: every successful [`BatteryModel::try_step`]
/// must record exactly one usage-accumulator entry and push exactly one
/// [`crate::SensorSample`], so downstream NAT/CF metrics and sensor
/// views behave identically across chemistries.
pub trait BatteryModel: Clone + PartialEq {
    /// Which chemistry this model implements.
    fn chemistry(&self) -> Chemistry;

    /// The static specification the unit was built from.
    fn spec(&self) -> &BatterySpec;

    /// Current state of charge (relative to the *effective* capacity).
    fn soc(&self) -> Soc;

    /// Overrides the state of charge.
    fn set_soc(&mut self, soc: Soc);

    /// Effective capacity after aging and manufacturing variation.
    fn effective_capacity(&self) -> AmpHours;

    /// Charge currently stored.
    fn stored_charge(&self) -> AmpHours;

    /// Present internal resistance (grows with aging).
    fn internal_resistance(&self) -> Ohms;

    /// Present open-circuit voltage.
    fn open_circuit_voltage(&self) -> Volts;

    /// Battery surface temperature.
    fn temperature(&self) -> Celsius;

    /// Telemetry log (sensor samples + usage accumulators).
    fn telemetry(&self) -> &TelemetryLog;

    /// Mutable telemetry access (for window resets by the controller).
    fn telemetry_mut(&mut self) -> &mut TelemetryLog;

    /// Number of discharge requests (partially) refused by the cutoff.
    fn cutoff_events(&self) -> u64;

    /// Hours since the battery last reached full charge.
    fn hours_since_full(&self) -> f64;

    /// Total accumulated aging damage (1.0 = end-of-life).
    fn total_damage(&self) -> f64;

    /// Remaining capacity as a fraction of initial capacity.
    fn capacity_fraction(&self) -> f64;

    /// Labelled per-mechanism damage breakdown.
    fn aging_breakdown(&self) -> AgingBreakdown;

    /// `true` once the end-of-life criterion (80 % capacity) is reached.
    fn is_end_of_life(&self) -> bool {
        self.total_damage() >= 1.0
    }

    /// How long the battery could sustain `power` before running empty.
    fn reserve_duration(&self, power: Watts) -> Option<SimDuration>;

    /// Maximum power deliverable right now without tripping the cutoff
    /// or the discharge-current limit.
    fn available_discharge_power(&self) -> Watts;

    /// Synthetically ages the unit to approximately `target_damage`
    /// without touching telemetry.
    fn pre_age(&mut self, target_damage: f64);

    /// Advances the battery one simulation step, rejecting degenerate
    /// requests with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::NonFinitePower`] for NaN/infinite power
    /// requests; state is untouched on error.
    fn try_step(
        &mut self,
        op: BatteryOp,
        ambient: Celsius,
        now: SimInstant,
        dt: SimDuration,
    ) -> Result<StepResult, BatteryError>;

    /// Advances one step, panicking on non-finite power requests.
    fn step(
        &mut self,
        op: BatteryOp,
        ambient: Celsius,
        now: SimInstant,
        dt: SimDuration,
    ) -> StepResult {
        self.try_step(op, ambient, now, dt)
            .expect("power request must be finite")
    }
}

/// A battery of any supported chemistry, dispatched statically.
///
/// The lead-acid arm wraps the exact pre-trait [`Battery`] — the same
/// code runs through the `match`, so lead-acid behaviour through the
/// trait is bit-identical to the direct model (pinned by property tests
/// and the byte-compared goldens).
#[derive(Debug, Clone, PartialEq)]
pub enum AnyBattery {
    /// Sealed lead-acid (the paper's model).
    LeadAcid(Battery),
    /// Li-ion equivalent-circuit model.
    LiIon(LiIonBattery),
}

impl AnyBattery {
    /// Creates a fully charged, brand-new battery of the spec's
    /// chemistry.
    pub fn new(spec: BatterySpec) -> Self {
        match spec.chemistry() {
            Chemistry::LeadAcid => AnyBattery::LeadAcid(Battery::new(spec)),
            Chemistry::LiIon => AnyBattery::LiIon(LiIonBattery::new(spec)),
        }
    }

    /// The lead-acid model, if that is this unit's chemistry.
    pub fn as_lead_acid(&self) -> Option<&Battery> {
        match self {
            AnyBattery::LeadAcid(b) => Some(b),
            AnyBattery::LiIon(_) => None,
        }
    }

    /// The Li-ion model, if that is this unit's chemistry.
    pub fn as_li_ion(&self) -> Option<&LiIonBattery> {
        match self {
            AnyBattery::LeadAcid(_) => None,
            AnyBattery::LiIon(b) => Some(b),
        }
    }

    /// Captures the unit's dynamic state for checkpointing. The aging
    /// breakdown carries the active chemistry's mechanism labels, so a
    /// captured state is only meaningful for a unit of the same
    /// chemistry, spec and variation.
    pub fn capture_state(&self) -> crate::state::BatteryUnitState {
        match self {
            AnyBattery::LeadAcid(b) => b.capture_state(),
            AnyBattery::LiIon(b) => b.capture_state(),
        }
    }

    /// Re-applies a captured dynamic state onto this unit (same
    /// chemistry, spec and variation as the captured one).
    pub fn restore_state(&mut self, state: &crate::state::BatteryUnitState) {
        match self {
            AnyBattery::LeadAcid(b) => b.restore_state(state),
            AnyBattery::LiIon(b) => b.restore_state(state),
        }
    }
}

/// Delegates every [`BatteryModel`] method to the active chemistry arm.
macro_rules! delegate {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            AnyBattery::LeadAcid($b) => $e,
            AnyBattery::LiIon($b) => $e,
        }
    };
}

impl BatteryModel for AnyBattery {
    fn chemistry(&self) -> Chemistry {
        delegate!(self, b => b.chemistry())
    }
    fn spec(&self) -> &BatterySpec {
        delegate!(self, b => b.spec())
    }
    fn soc(&self) -> Soc {
        delegate!(self, b => b.soc())
    }
    fn set_soc(&mut self, soc: Soc) {
        delegate!(self, b => b.set_soc(soc));
    }
    fn effective_capacity(&self) -> AmpHours {
        delegate!(self, b => b.effective_capacity())
    }
    fn stored_charge(&self) -> AmpHours {
        delegate!(self, b => b.stored_charge())
    }
    fn internal_resistance(&self) -> Ohms {
        delegate!(self, b => b.internal_resistance())
    }
    fn open_circuit_voltage(&self) -> Volts {
        delegate!(self, b => b.open_circuit_voltage())
    }
    fn temperature(&self) -> Celsius {
        delegate!(self, b => b.temperature())
    }
    fn telemetry(&self) -> &TelemetryLog {
        delegate!(self, b => b.telemetry())
    }
    fn telemetry_mut(&mut self) -> &mut TelemetryLog {
        delegate!(self, b => b.telemetry_mut())
    }
    fn cutoff_events(&self) -> u64 {
        delegate!(self, b => b.cutoff_events())
    }
    fn hours_since_full(&self) -> f64 {
        delegate!(self, b => b.hours_since_full())
    }
    fn total_damage(&self) -> f64 {
        delegate!(self, b => b.total_damage())
    }
    fn capacity_fraction(&self) -> f64 {
        delegate!(self, b => b.capacity_fraction())
    }
    fn aging_breakdown(&self) -> AgingBreakdown {
        delegate!(self, b => b.aging_breakdown())
    }
    fn is_end_of_life(&self) -> bool {
        delegate!(self, b => b.is_end_of_life())
    }
    fn reserve_duration(&self, power: Watts) -> Option<SimDuration> {
        delegate!(self, b => b.reserve_duration(power))
    }
    fn available_discharge_power(&self) -> Watts {
        delegate!(self, b => b.available_discharge_power())
    }
    fn pre_age(&mut self, target_damage: f64) {
        delegate!(self, b => b.pre_age(target_damage));
    }
    fn try_step(
        &mut self,
        op: BatteryOp,
        ambient: Celsius,
        now: SimInstant,
        dt: SimDuration,
    ) -> Result<StepResult, BatteryError> {
        delegate!(self, b => b.try_step(op, ambient, now, dt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::Watts;

    #[test]
    fn chemistry_names_round_trip() {
        for c in Chemistry::ALL {
            assert_eq!(Chemistry::parse(c.name()), Some(c));
        }
        assert_eq!(Chemistry::parse("unobtainium"), None);
        assert_eq!(Chemistry::default(), Chemistry::LeadAcid);
    }

    #[test]
    fn aging_labels_match_gauge_names() {
        for c in Chemistry::ALL {
            let labels = c.aging_labels();
            let gauges = c.aging_gauge_names();
            assert_eq!(labels.len(), gauges.len());
            for (label, gauge) in labels.iter().zip(gauges) {
                assert_eq!(*gauge, format!("battery.aging.{label}"));
            }
        }
    }

    #[test]
    fn breakdown_accumulate_and_delta() {
        let a = AgingBreakdown::from_pairs(&[("calendar", 0.1), ("cycle", 0.3)]);
        let b = AgingBreakdown::from_pairs(&[("calendar", 0.05), ("cycle", 0.15)]);
        let mut agg = AgingBreakdown::default();
        agg.accumulate(&a);
        agg.accumulate(&b);
        assert!((agg.total() - 0.6).abs() < 1e-12);
        assert!((agg.get("calendar").unwrap() - 0.15).abs() < 1e-12);
        let d = a.delta(&b);
        assert!((d.get("cycle").unwrap() - 0.15).abs() < 1e-12);
        assert!(AgingBreakdown::default().is_empty());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn lead_acid_breakdown_converts_in_paper_order() {
        let got: Vec<&str> = AgingBreakdown::from(&crate::aging::DamageBreakdown::default())
            .iter()
            .map(|(l, _)| l)
            .collect();
        assert_eq!(got, Chemistry::LeadAcid.aging_labels());
    }

    #[test]
    fn any_battery_constructs_the_spec_chemistry() {
        let pb = AnyBattery::new(BatterySpec::prototype());
        assert_eq!(pb.chemistry(), Chemistry::LeadAcid);
        assert!(pb.as_lead_acid().is_some() && pb.as_li_ion().is_none());
        let li = AnyBattery::new(BatterySpec::li_ion_prototype());
        assert_eq!(li.chemistry(), Chemistry::LiIon);
        assert!(li.as_li_ion().is_some() && li.as_lead_acid().is_none());
        assert!(li.available_discharge_power() > Watts::ZERO);
    }
}
