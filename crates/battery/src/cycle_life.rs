//! Manufacturer cycle-life curves (paper Fig 10).
//!
//! The paper plots cycle life against depth of discharge for batteries from
//! Hoppecke, Trojan and UPG and observes that "battery cycle life decreases
//! by 50 % if it is frequently discharged at a DoD above 50 %". The curves
//! here use the standard inverse-power model with an exponential
//! deep-discharge penalty:
//!
//! `N(DoD) = a · DoD⁻ᵏ · exp(−c · DoD)`
//!
//! With `k = 1` the pure power-law part makes cycle life exactly halve when
//! DoD doubles, matching the paper's observation, and `c > 0` bends the
//! curve down at deep discharge (active-mass stress), which is why
//! excessively deep planned aging stops paying off (paper Fig 21).

use baat_units::{AmpHours, Dod};

/// A fitted cycle-life curve `N(DoD) = a · DoD⁻ᵏ · exp(−c · DoD)`.
///
/// # Examples
///
/// ```
/// use baat_battery::CycleLifeCurve;
/// use baat_units::Dod;
///
/// let curve = CycleLifeCurve::new(733.0, 1.0, 0.4);
/// let shallow = curve.cycles_to_eol(Dod::new(0.25).unwrap());
/// let deep = curve.cycles_to_eol(Dod::new(0.50).unwrap());
/// assert!(deep < shallow);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleLifeCurve {
    a: f64,
    k: f64,
    c: f64,
}

impl CycleLifeCurve {
    /// Creates a curve from its three parameters.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `a` is not positive or `k`/`c` are
    /// negative.
    pub fn new(a: f64, k: f64, c: f64) -> Self {
        debug_assert!(a > 0.0 && k >= 0.0 && c >= 0.0, "invalid curve parameters");
        Self { a, k, c }
    }

    /// Number of charge/discharge cycles to end-of-life (80 % capacity) when
    /// cycling repeatedly at depth `dod`.
    ///
    /// A zero DoD returns `f64::INFINITY`: a battery that is never
    /// discharged does not wear by cycling.
    pub fn cycles_to_eol(&self, dod: Dod) -> f64 {
        let d = dod.value();
        if d == 0.0 {
            return f64::INFINITY;
        }
        self.a * d.powf(-self.k) * (-self.c * d).exp()
    }

    /// Total charge that can be cycled through the battery before
    /// end-of-life when repeatedly cycling `capacity`-sized cells at `dod`.
    ///
    /// For `k = 1` this is nearly constant across DoD — the paper's
    /// constant-Ah-throughput rule ([31, 32]) — with a mild penalty at deep
    /// discharge from the exponential term.
    pub fn lifetime_throughput(&self, dod: Dod, capacity: AmpHours) -> AmpHours {
        let cycles = self.cycles_to_eol(dod);
        if cycles.is_infinite() {
            // Limit of N(d)·d·C as d → 0 for k = 1.
            return AmpHours::new(self.a * capacity.as_f64());
        }
        AmpHours::new(cycles * dod.value() * capacity.as_f64())
    }
}

/// Lead-acid battery manufacturers whose cycle-life data the paper plots in
/// Fig 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Manufacturer {
    /// Hoppecke industrial batteries — the longest-lived curve.
    Hoppecke,
    /// Trojan deep-cycle batteries — the mid curve (prototype default).
    #[default]
    Trojan,
    /// UPG value batteries — the shortest-lived curve.
    Upg,
}

impl Manufacturer {
    /// All manufacturers, in Fig 10's order.
    pub const ALL: [Manufacturer; 3] = [
        Manufacturer::Hoppecke,
        Manufacturer::Trojan,
        Manufacturer::Upg,
    ];

    /// The fitted cycle-life curve for this manufacturer.
    pub fn curve(self) -> CycleLifeCurve {
        match self {
            // Calibrated so N(50 % DoD) ≈ 1500 / 1200 / 500 cycles,
            // bracketing published deep-cycle lead-acid datasheets.
            Manufacturer::Hoppecke => CycleLifeCurve::new(916.0, 1.0, 0.4),
            Manufacturer::Trojan => CycleLifeCurve::new(733.0, 1.0, 0.4),
            Manufacturer::Upg => CycleLifeCurve::new(305.0, 1.0, 0.4),
        }
    }

    /// Convenience forward to [`CycleLifeCurve::cycles_to_eol`].
    pub fn cycles_to_eol(self, dod: Dod) -> f64 {
        self.curve().cycles_to_eol(dod)
    }

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            Manufacturer::Hoppecke => "Hoppecke",
            Manufacturer::Trojan => "Trojan",
            Manufacturer::Upg => "UPG",
        }
    }
}

impl core::fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dod(v: f64) -> Dod {
        Dod::new(v).unwrap()
    }

    #[test]
    fn doubling_dod_roughly_halves_cycle_life() {
        // The paper's headline observation about Fig 10.
        for m in Manufacturer::ALL {
            let n25 = m.cycles_to_eol(dod(0.25));
            let n50 = m.cycles_to_eol(dod(0.50));
            let ratio = n50 / n25;
            assert!(
                (0.40..0.50).contains(&ratio),
                "{m}: ratio {ratio} should be slightly below 0.5"
            );
        }
    }

    #[test]
    fn manufacturer_ordering_matches_fig10() {
        let d = dod(0.5);
        let h = Manufacturer::Hoppecke.cycles_to_eol(d);
        let t = Manufacturer::Trojan.cycles_to_eol(d);
        let u = Manufacturer::Upg.cycles_to_eol(d);
        assert!(h > t && t > u, "Hoppecke > Trojan > UPG: {h} {t} {u}");
    }

    #[test]
    fn cycle_life_monotone_decreasing_in_dod() {
        let curve = Manufacturer::Trojan.curve();
        let mut prev = f64::INFINITY;
        for step in 1..=20 {
            let n = curve.cycles_to_eol(dod(f64::from(step) / 20.0));
            assert!(n < prev, "cycle life must fall as DoD grows");
            prev = n;
        }
    }

    #[test]
    fn zero_dod_is_infinite_cycles_but_finite_throughput() {
        let curve = Manufacturer::Trojan.curve();
        assert!(curve.cycles_to_eol(dod(0.0)).is_infinite());
        let q = curve.lifetime_throughput(dod(0.0), AmpHours::new(35.0));
        assert!(q.as_f64().is_finite() && q.as_f64() > 0.0);
    }

    #[test]
    fn throughput_nearly_constant_at_shallow_dod_and_penalized_deep() {
        let curve = Manufacturer::Trojan.curve();
        let cap = AmpHours::new(35.0);
        let q20 = curve.lifetime_throughput(dod(0.2), cap).as_f64();
        let q40 = curve.lifetime_throughput(dod(0.4), cap).as_f64();
        let q90 = curve.lifetime_throughput(dod(0.9), cap).as_f64();
        // Shallow-to-moderate cycling moves similar total charge...
        assert!((q40 / q20 - 1.0).abs() < 0.12, "q20={q20} q40={q40}");
        // ...but very deep cycling wastes life.
        assert!(q90 < q20, "deep discharge must cost total throughput");
    }

    #[test]
    fn trojan_is_default() {
        assert_eq!(Manufacturer::default(), Manufacturer::Trojan);
    }
}
