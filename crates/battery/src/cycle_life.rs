//! Manufacturer cycle-life curves (paper Fig 10).
//!
//! The paper plots cycle life against depth of discharge for batteries from
//! Hoppecke, Trojan and UPG and observes that "battery cycle life decreases
//! by 50 % if it is frequently discharged at a DoD above 50 %". The curves
//! here use the standard inverse-power model with an exponential
//! deep-discharge penalty:
//!
//! `N(DoD) = a · DoD⁻ᵏ · exp(−c · DoD)`
//!
//! With `k = 1` the pure power-law part makes cycle life exactly halve when
//! DoD doubles, matching the paper's observation, and `c > 0` bends the
//! curve down at deep discharge (active-mass stress), which is why
//! excessively deep planned aging stops paying off (paper Fig 21).

use baat_units::{AmpHours, Dod};

/// A fitted cycle-life curve `N(DoD) = a · DoD⁻ᵏ · exp(−c · DoD)`.
///
/// # Examples
///
/// ```
/// use baat_battery::CycleLifeCurve;
/// use baat_units::Dod;
///
/// let curve = CycleLifeCurve::new(733.0, 1.0, 0.4);
/// let shallow = curve.cycles_to_eol(Dod::new(0.25).unwrap());
/// let deep = curve.cycles_to_eol(Dod::new(0.50).unwrap());
/// assert!(deep < shallow);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleLifeCurve {
    a: f64,
    k: f64,
    c: f64,
}

impl CycleLifeCurve {
    /// Creates a curve from its three parameters.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `a` is not positive or `k`/`c` are
    /// negative.
    pub fn new(a: f64, k: f64, c: f64) -> Self {
        debug_assert!(a > 0.0 && k >= 0.0 && c >= 0.0, "invalid curve parameters");
        Self { a, k, c }
    }

    /// Fitted curve for an LFP-flavoured Li-ion cell.
    ///
    /// Calibrated so N(100 % DoD) ≈ 2000 cycles and N(50 % DoD) ≈ 3100 —
    /// the flat-by-lead-acid-standards DoD dependence of published LFP
    /// datasheets (`k` well below the lead-acid curves' 1.0). Not a
    /// [`Manufacturer`] variant: Fig 10 plots lead-acid vendors only.
    pub fn li_ion_lfp() -> Self {
        Self::new(2_568.0, 0.45, 0.25)
    }

    /// Number of charge/discharge cycles to end-of-life (80 % capacity) when
    /// cycling repeatedly at depth `dod`.
    ///
    /// A zero DoD returns `f64::INFINITY`: a battery that is never
    /// discharged does not wear by cycling.
    pub fn cycles_to_eol(&self, dod: Dod) -> f64 {
        let d = dod.value();
        if d == 0.0 {
            return f64::INFINITY;
        }
        self.a * d.powf(-self.k) * (-self.c * d).exp()
    }

    /// Total charge that can be cycled through the battery before
    /// end-of-life when repeatedly cycling `capacity`-sized cells at `dod`.
    ///
    /// For `k = 1` this is nearly constant across DoD — the paper's
    /// constant-Ah-throughput rule ([31, 32]) — with a mild penalty at deep
    /// discharge from the exponential term.
    pub fn lifetime_throughput(&self, dod: Dod, capacity: AmpHours) -> AmpHours {
        let cycles = self.cycles_to_eol(dod);
        if cycles.is_infinite() {
            // Limit of N(d)·d·C as d → 0 for k = 1.
            return AmpHours::new(self.a * capacity.as_f64());
        }
        AmpHours::new(cycles * dod.value() * capacity.as_f64())
    }
}

/// A [`CycleLifeCurve`] with a last-input/last-output memo.
///
/// Sweeps and policies repeatedly evaluate the curve at the same depth of
/// discharge (a DoD target holds for many consecutive steps; Fig 10 queries
/// each sweep point several times). The memo is keyed on the raw bits of
/// the DoD, so a hit returns the exact `f64` a fresh `powf·exp` evaluation
/// would produce — memoization can never change a result, only skip its
/// cost. The initial pair `(0, ∞)` is itself exact: a DoD whose bits are
/// zero is `0.0`, whose cycle life is `f64::INFINITY` by definition.
#[derive(Debug, Clone, Copy)]
pub struct MemoizedCycleLife {
    curve: CycleLifeCurve,
    dod_bits: u64,
    cycles: f64,
}

/// Equality is semantic: two memoized curves match when their underlying
/// curves match, regardless of what input they last evaluated.
impl PartialEq for MemoizedCycleLife {
    fn eq(&self, other: &Self) -> bool {
        self.curve == other.curve
    }
}

impl MemoizedCycleLife {
    /// Wraps a curve with an (initially empty) evaluation memo.
    pub fn new(curve: CycleLifeCurve) -> Self {
        Self {
            curve,
            dod_bits: 0.0f64.to_bits(),
            cycles: f64::INFINITY,
        }
    }

    /// The wrapped curve.
    pub fn curve(&self) -> CycleLifeCurve {
        self.curve
    }

    /// Memoized [`CycleLifeCurve::cycles_to_eol`]: bit-identical to the
    /// direct formula, skipping the `powf·exp` when `dod` repeats.
    pub fn cycles_to_eol(&mut self, dod: Dod) -> f64 {
        let bits = dod.value().to_bits();
        if bits != self.dod_bits {
            self.dod_bits = bits;
            self.cycles = self.curve.cycles_to_eol(dod);
        }
        self.cycles
    }

    /// Memoized [`CycleLifeCurve::lifetime_throughput`].
    pub fn lifetime_throughput(&mut self, dod: Dod, capacity: AmpHours) -> AmpHours {
        let cycles = self.cycles_to_eol(dod);
        if cycles.is_infinite() {
            return AmpHours::new(self.curve.a * capacity.as_f64());
        }
        AmpHours::new(cycles * dod.value() * capacity.as_f64())
    }
}

impl From<CycleLifeCurve> for MemoizedCycleLife {
    fn from(curve: CycleLifeCurve) -> Self {
        Self::new(curve)
    }
}

/// Lead-acid battery manufacturers whose cycle-life data the paper plots in
/// Fig 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Manufacturer {
    /// Hoppecke industrial batteries — the longest-lived curve.
    Hoppecke,
    /// Trojan deep-cycle batteries — the mid curve (prototype default).
    #[default]
    Trojan,
    /// UPG value batteries — the shortest-lived curve.
    Upg,
}

impl Manufacturer {
    /// All manufacturers, in Fig 10's order.
    pub const ALL: [Manufacturer; 3] = [
        Manufacturer::Hoppecke,
        Manufacturer::Trojan,
        Manufacturer::Upg,
    ];

    /// The fitted cycle-life curve for this manufacturer.
    pub fn curve(self) -> CycleLifeCurve {
        match self {
            // Calibrated so N(50 % DoD) ≈ 1500 / 1200 / 500 cycles,
            // bracketing published deep-cycle lead-acid datasheets.
            Manufacturer::Hoppecke => CycleLifeCurve::new(916.0, 1.0, 0.4),
            Manufacturer::Trojan => CycleLifeCurve::new(733.0, 1.0, 0.4),
            Manufacturer::Upg => CycleLifeCurve::new(305.0, 1.0, 0.4),
        }
    }

    /// Convenience forward to [`CycleLifeCurve::cycles_to_eol`].
    pub fn cycles_to_eol(self, dod: Dod) -> f64 {
        self.curve().cycles_to_eol(dod)
    }

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            Manufacturer::Hoppecke => "Hoppecke",
            Manufacturer::Trojan => "Trojan",
            Manufacturer::Upg => "UPG",
        }
    }
}

impl core::fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dod(v: f64) -> Dod {
        Dod::new(v).unwrap()
    }

    #[test]
    fn doubling_dod_roughly_halves_cycle_life() {
        // The paper's headline observation about Fig 10.
        for m in Manufacturer::ALL {
            let n25 = m.cycles_to_eol(dod(0.25));
            let n50 = m.cycles_to_eol(dod(0.50));
            let ratio = n50 / n25;
            assert!(
                (0.40..0.50).contains(&ratio),
                "{m}: ratio {ratio} should be slightly below 0.5"
            );
        }
    }

    #[test]
    fn manufacturer_ordering_matches_fig10() {
        let d = dod(0.5);
        let h = Manufacturer::Hoppecke.cycles_to_eol(d);
        let t = Manufacturer::Trojan.cycles_to_eol(d);
        let u = Manufacturer::Upg.cycles_to_eol(d);
        assert!(h > t && t > u, "Hoppecke > Trojan > UPG: {h} {t} {u}");
    }

    #[test]
    fn cycle_life_monotone_decreasing_in_dod() {
        let curve = Manufacturer::Trojan.curve();
        let mut prev = f64::INFINITY;
        for step in 1..=20 {
            let n = curve.cycles_to_eol(dod(f64::from(step) / 20.0));
            assert!(n < prev, "cycle life must fall as DoD grows");
            prev = n;
        }
    }

    #[test]
    fn zero_dod_is_infinite_cycles_but_finite_throughput() {
        let curve = Manufacturer::Trojan.curve();
        assert!(curve.cycles_to_eol(dod(0.0)).is_infinite());
        let q = curve.lifetime_throughput(dod(0.0), AmpHours::new(35.0));
        assert!(q.as_f64().is_finite() && q.as_f64() > 0.0);
    }

    #[test]
    fn throughput_nearly_constant_at_shallow_dod_and_penalized_deep() {
        let curve = Manufacturer::Trojan.curve();
        let cap = AmpHours::new(35.0);
        let q20 = curve.lifetime_throughput(dod(0.2), cap).as_f64();
        let q40 = curve.lifetime_throughput(dod(0.4), cap).as_f64();
        let q90 = curve.lifetime_throughput(dod(0.9), cap).as_f64();
        // Shallow-to-moderate cycling moves similar total charge...
        assert!((q40 / q20 - 1.0).abs() < 0.12, "q20={q20} q40={q40}");
        // ...but very deep cycling wastes life.
        assert!(q90 < q20, "deep discharge must cost total throughput");
    }

    #[test]
    fn li_ion_outlives_lead_acid_and_depends_less_on_dod() {
        let li = CycleLifeCurve::li_ion_lfp();
        for m in Manufacturer::ALL {
            assert!(li.cycles_to_eol(dod(0.5)) > 1.8 * m.cycles_to_eol(dod(0.5)));
        }
        // Halving sensitivity: doubling DoD costs Li-ion well under the
        // lead-acid ~50 %.
        let ratio = li.cycles_to_eol(dod(0.5)) / li.cycles_to_eol(dod(0.25));
        assert!(ratio > 0.6, "li-ion DoD sensitivity too steep: {ratio}");
    }

    #[test]
    fn trojan_is_default() {
        assert_eq!(Manufacturer::default(), Manufacturer::Trojan);
    }

    #[test]
    fn memoized_curve_is_bit_identical_to_direct_formula() {
        // Repeats hit the memo, fresh inputs miss; every answer must match
        // the uncached curve bit for bit, including the 0-DoD infinity.
        let curve = Manufacturer::Trojan.curve();
        let mut memo = MemoizedCycleLife::new(curve);
        let dods = [0.25, 0.25, 0.25, 0.5, 0.5, 0.0, 0.0, 0.73, 0.25, 1.0];
        for (k, &d) in dods.iter().enumerate() {
            let got = memo.cycles_to_eol(dod(d));
            let want = curve.cycles_to_eol(dod(d));
            assert_eq!(got.to_bits(), want.to_bits(), "cycles at step {k}");
            let qgot = memo.lifetime_throughput(dod(d), AmpHours::new(35.0));
            let qwant = curve.lifetime_throughput(dod(d), AmpHours::new(35.0));
            assert_eq!(
                qgot.as_f64().to_bits(),
                qwant.as_f64().to_bits(),
                "throughput at step {k}"
            );
        }
    }

    #[test]
    fn memoized_equality_ignores_the_memo() {
        let mut warmed = MemoizedCycleLife::new(Manufacturer::Trojan.curve());
        warmed.cycles_to_eol(dod(0.4));
        let cold = MemoizedCycleLife::new(Manufacturer::Trojan.curve());
        assert_eq!(warmed, cold);
        assert_ne!(warmed, MemoizedCycleLife::new(Manufacturer::Upg.curve()));
    }
}
