//! Li-ion (LFP-flavoured) equivalent-circuit battery model.
//!
//! The second [`BatteryModel`](crate::BatteryModel) chemistry: a simple
//! equivalent-circuit/KiBaM-style cell with
//!
//! * a flat-plateau OCV curve with a top knee
//!   ([`crate::li_ion_open_circuit_voltage`]),
//! * CC-CV charge acceptance (full current until ~95 % SoC, then a
//!   linear taper),
//! * no Peukert rate penalty and no gassing overcharge (the BMS caps
//!   charge before gassing chemistry exists to model), and
//! * two aging mechanisms — **calendar** (Arrhenius temperature and
//!   SoC-stress scaled time) and **cycle** (Ah throughput weighted by
//!   the [`CycleLifeCurve::li_ion_lfp`] depth-of-discharge curve) —
//!   instead of lead-acid's five.
//!
//! The model reuses the workspace substrate — [`BatterySpec`],
//! [`ThermalModel`], [`TelemetryLog`], the dt/Arrhenius/cycle-life
//! memos — so determinism, telemetry obligations and memoization
//! behaviour match the lead-acid implementation exactly.

use baat_units::{
    AmpHours, Amperes, Celsius, Ohms, Scale, SimDuration, SimInstant, Soc, Volts, WattHours, Watts,
};

use crate::aging::{ArrheniusMemo, StressSample};
use crate::chemistry::{AgingBreakdown, BatteryModel, Chemistry};
use crate::cycle_life::{CycleLifeCurve, MemoizedCycleLife};
use crate::error::BatteryError;
use crate::model::{BatteryOp, DtMemo, StepResult};
use crate::spec::BatterySpec;
use crate::telemetry::{SensorSample, TelemetryLog};
use crate::thermal::ThermalModel;
use crate::voltage::{
    charge_current_for_power, discharge_current_for_power, li_ion_open_circuit_voltage,
    terminal_voltage,
};

/// SoC at or above which the battery counts as fully recharged.
const FULL_SOC: f64 = 0.99;
/// SoC where constant-current charging hands over to the CV taper.
const CV_KNEE_SOC: f64 = 0.95;
/// Calendar life to end-of-life at 25 °C and 50 % SoC, in years.
const CALENDAR_EOL_YEARS: f64 = 10.0;
/// Calendar SoC stress: `base + gain · SoC` (1.0 at 50 % SoC; storage
/// near full ages faster).
const CALENDAR_SOC_STRESS_BASE: f64 = 0.6;
const CALENDAR_SOC_STRESS_GAIN: f64 = 0.8;
/// Capacity fraction lost per unit damage (damage 1.0 = 80 %, the same
/// end-of-life convention as lead-acid).
const CAPACITY_FADE_PER_DAMAGE: f64 = 0.20;
/// Relative resistance growth per unit damage (much gentler than
/// lead-acid's 1.2).
const RESISTANCE_GROWTH_PER_DAMAGE: f64 = 0.35;
/// Relative OCV sag per unit damage (Li-ion voltage barely sags).
const OCV_SAG_PER_DAMAGE: f64 = 0.03;

/// Calendar + cycle aging state of one Li-ion unit.
#[derive(Debug, Clone)]
pub struct LiIonAgingState {
    calendar: f64,
    cycle: f64,
    rate_multiplier: f64,
    arrhenius: ArrheniusMemo,
    cycle_life: MemoizedCycleLife,
}

/// Equality is semantic — accumulated damage and rate multiplier. The
/// Arrhenius and cycle-life memos are pure evaluation caches.
impl PartialEq for LiIonAgingState {
    fn eq(&self, other: &Self) -> bool {
        self.calendar == other.calendar
            && self.cycle == other.cycle
            && self.rate_multiplier == other.rate_multiplier
            && self.cycle_life == other.cycle_life
    }
}

impl LiIonAgingState {
    /// A brand-new unit with the given manufacturing aging-rate
    /// multiplier.
    pub fn new(rate_multiplier: Scale) -> Self {
        Self {
            calendar: 0.0,
            cycle: 0.0,
            rate_multiplier: rate_multiplier.value(),
            arrhenius: ArrheniusMemo::default(),
            cycle_life: MemoizedCycleLife::new(CycleLifeCurve::li_ion_lfp()),
        }
    }

    /// The unit-to-unit aging-rate multiplier.
    pub fn rate_multiplier(&self) -> f64 {
        self.rate_multiplier
    }

    /// Integrates one step of stress. `dt_days` must equal
    /// `s.dt.as_days()` (the caller's dt memo supplies it).
    pub fn apply(&mut self, s: &StressSample, dt_days: f64) {
        let arr = self.arrhenius.factor(s.temperature);
        let m = self.rate_multiplier * arr;
        // Calendar: Arrhenius-scaled shelf time, worse at high SoC.
        let soc_stress = CALENDAR_SOC_STRESS_BASE + CALENDAR_SOC_STRESS_GAIN * s.soc.value();
        self.calendar += m * soc_stress * dt_days / (CALENDAR_EOL_YEARS * 365.0);
        // Cycle: equivalent-full-cycle throughput costed by the
        // cycle-life curve at the present depth of discharge. A full
        // battery (DoD 0) cycles for free; the memo replays the exact
        // `powf·exp` result for repeated depths.
        let moved = (s.discharged + s.charged).as_f64();
        if moved > 0.0 {
            let cycles = self.cycle_life.cycles_to_eol(s.soc.to_dod());
            self.cycle += m * moved / (2.0 * s.capacity.as_f64()) / cycles;
        }
    }

    /// Overrides the accumulated calendar/cycle damage (checkpoint
    /// restore). The Arrhenius and cycle-life memos are untouched — both
    /// are exact replay caches.
    pub fn restore_damage(&mut self, calendar: f64, cycle: f64) {
        self.calendar = calendar;
        self.cycle = cycle;
    }

    /// Total accumulated damage (1.0 = end-of-life).
    pub fn total_damage(&self) -> f64 {
        self.calendar + self.cycle
    }

    /// Labelled calendar/cycle breakdown.
    pub fn breakdown(&self) -> AgingBreakdown {
        AgingBreakdown::from_pairs(&[("calendar", self.calendar), ("cycle", self.cycle)])
    }

    /// Remaining capacity as a fraction of initial capacity.
    pub fn capacity_fraction(&self) -> f64 {
        (1.0 - CAPACITY_FADE_PER_DAMAGE * self.total_damage()).max(0.5)
    }

    /// Internal-resistance multiplier relative to the new battery.
    pub fn resistance_factor(&self) -> f64 {
        1.0 + RESISTANCE_GROWTH_PER_DAMAGE * self.total_damage()
    }

    /// Open-circuit-voltage multiplier relative to the new battery.
    pub fn ocv_factor(&self) -> f64 {
        (1.0 - OCV_SAG_PER_DAMAGE * self.total_damage()).max(0.85)
    }
}

/// A single Li-ion battery unit with aging.
///
/// # Examples
///
/// ```
/// use baat_battery::{BatteryModel, BatteryOp, BatterySpec, LiIonBattery};
/// use baat_units::{Celsius, SimDuration, SimInstant, Watts};
///
/// let mut battery = LiIonBattery::new(BatterySpec::li_ion_prototype());
/// let result = battery.step(
///     BatteryOp::Discharge(Watts::new(60.0)),
///     Celsius::new(25.0),
///     SimInstant::START,
///     SimDuration::from_minutes(10),
/// );
/// assert!(result.delivered.as_f64() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LiIonBattery {
    spec: BatterySpec,
    aging: LiIonAgingState,
    thermal: ThermalModel,
    telemetry: TelemetryLog,
    soc: Soc,
    hours_since_full: f64,
    capacity_scale: f64,
    cutoff_events: u64,
    dt_memo: DtMemo,
}

/// Equality is semantic; the dt conversion memo is a pure cache.
impl PartialEq for LiIonBattery {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.aging == other.aging
            && self.thermal == other.thermal
            && self.telemetry == other.telemetry
            && self.soc == other.soc
            && self.hours_since_full == other.hours_since_full
            && self.capacity_scale == other.capacity_scale
            && self.cutoff_events == other.cutoff_events
    }
}

impl LiIonBattery {
    /// Creates a fully charged, brand-new Li-ion battery.
    pub fn new(spec: BatterySpec) -> Self {
        Self::with_variation(spec, Scale::ONE, Scale::ONE)
    }

    /// Creates a unit with manufacturing variation: an aging-rate
    /// multiplier and a capacity scale (1.0 = nominal).
    pub fn with_variation(spec: BatterySpec, rate: Scale, capacity_scale: Scale) -> Self {
        let thermal = ThermalModel::new(
            spec.ambient(),
            spec.thermal_resistance(),
            spec.thermal_time_constant_s(),
        );
        Self {
            spec,
            aging: LiIonAgingState::new(rate),
            thermal,
            telemetry: TelemetryLog::default(),
            soc: Soc::FULL,
            hours_since_full: 0.0,
            capacity_scale: capacity_scale.value(),
            cutoff_events: 0,
            dt_memo: DtMemo::default(),
        }
    }

    /// Accumulated calendar/cycle aging state.
    pub fn aging(&self) -> &LiIonAgingState {
        &self.aging
    }

    /// Captures the unit's dynamic state for checkpointing (see
    /// [`crate::Battery::capture_state`]; identical contract).
    pub fn capture_state(&self) -> crate::state::BatteryUnitState {
        crate::state::BatteryUnitState {
            soc: self.soc,
            hours_since_full: self.hours_since_full,
            cutoff_events: self.cutoff_events,
            temperature: self.thermal.temperature(),
            aging: self.aging.breakdown(),
            telemetry: self.telemetry.capture(),
        }
    }

    /// Re-applies a captured dynamic state onto this unit (see
    /// [`crate::Battery::restore_state`]; identical contract).
    pub fn restore_state(&mut self, state: &crate::state::BatteryUnitState) {
        self.soc = state.soc;
        self.hours_since_full = state.hours_since_full;
        self.cutoff_events = state.cutoff_events;
        self.thermal.set_temperature(state.temperature);
        self.aging.restore_damage(
            state.aging.get("calendar").unwrap_or(0.0),
            state.aging.get("cycle").unwrap_or(0.0),
        );
        self.telemetry = TelemetryLog::restore(&state.telemetry);
    }

    fn available_discharge_power_at(&self, ocv: Volts, r: Ohms) -> Watts {
        if self.soc == Soc::EMPTY {
            return Watts::ZERO;
        }
        let i_cutoff = ((ocv - self.spec.cutoff_voltage()).as_f64() / r.as_f64()).max(0.0);
        let i_max = i_cutoff.min(self.spec.max_discharge_current().as_f64());
        let i = Amperes::new(i_max);
        let v = terminal_voltage(ocv, i, r);
        (i * v).max(Watts::ZERO)
    }

    fn apply_discharge(&mut self, power: Watts, ocv: Volts, r: Ohms, dt_hours: f64) -> StepResult {
        if power.as_f64() <= 0.0 {
            return StepResult::idle(ocv);
        }
        let available = self.available_discharge_power_at(ocv, r);
        let mut cutoff = false;
        let granted = if power > available {
            cutoff = true;
            self.cutoff_events += 1;
            available
        } else {
            power
        };
        if granted.as_f64() <= 0.0 {
            return StepResult {
                cutoff: true,
                ..StepResult::idle(ocv)
            };
        }
        let current = discharge_current_for_power(granted.as_f64(), ocv, r)
            .unwrap_or(self.spec.max_discharge_current());
        // No Peukert penalty: Li-ion capacity is essentially
        // rate-independent at datacenter C-rates.
        let drawn = AmpHours::new(current.as_f64() * dt_hours);
        let capacity = self.effective_capacity();
        let stored = capacity * self.soc.value();
        let (actual_drawn, delivered, current, cutoff) = if drawn > stored {
            let frac = stored / drawn;
            self.cutoff_events += 1;
            (
                stored,
                granted * frac,
                Amperes::new(current.as_f64() * frac),
                true,
            )
        } else {
            (drawn, granted, current, cutoff)
        };
        self.soc = Soc::saturating(self.soc.value() - actual_drawn / capacity);
        StepResult {
            delivered,
            accepted: Watts::ZERO,
            terminal_voltage: terminal_voltage(ocv, current, r),
            current,
            cutoff,
        }
    }

    fn apply_charge(&mut self, power: Watts, ocv: Volts, r: Ohms, dt_hours: f64) -> StepResult {
        if power.as_f64() <= 0.0 || self.soc.value() >= 1.0 {
            return StepResult::idle(ocv);
        }
        // CC-CV acceptance: full current up to the CV knee, then a
        // linear taper to zero at 100 % SoC.
        let headroom = (1.0 - self.soc.value()) / (1.0 - CV_KNEE_SOC);
        let taper = headroom.min(1.0);
        let i_limit = self.spec.max_charge_current().as_f64() * taper;
        if i_limit <= 0.0 {
            return StepResult::idle(ocv);
        }
        let i_for_power =
            charge_current_for_power(power.as_f64(), ocv, r).map_or(i_limit, |a| a.as_f64());
        let i = i_for_power.min(i_limit);
        let current = Amperes::new(-i);
        let v_term = terminal_voltage(ocv, current, r);
        let accepted = Watts::new(i * v_term.as_f64());
        let stored_ah = i * dt_hours * self.spec.coulombic_efficiency().value();
        let capacity = self.effective_capacity();
        self.soc = Soc::saturating(self.soc.value() + stored_ah / capacity.as_f64());
        StepResult {
            delivered: Watts::ZERO,
            accepted,
            terminal_voltage: v_term,
            current,
            cutoff: false,
        }
    }
}

impl BatteryModel for LiIonBattery {
    fn chemistry(&self) -> Chemistry {
        Chemistry::LiIon
    }

    fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    fn soc(&self) -> Soc {
        self.soc
    }

    fn set_soc(&mut self, soc: Soc) {
        self.soc = soc;
        if soc.value() >= FULL_SOC {
            self.hours_since_full = 0.0;
        }
    }

    fn effective_capacity(&self) -> AmpHours {
        self.spec.capacity() * (self.aging.capacity_fraction() * self.capacity_scale)
    }

    fn stored_charge(&self) -> AmpHours {
        self.effective_capacity() * self.soc.value()
    }

    fn internal_resistance(&self) -> Ohms {
        self.spec.internal_resistance() * self.aging.resistance_factor()
    }

    fn open_circuit_voltage(&self) -> Volts {
        li_ion_open_circuit_voltage(
            self.spec.nominal_voltage(),
            self.soc,
            self.aging.ocv_factor(),
        )
    }

    fn temperature(&self) -> Celsius {
        self.thermal.temperature()
    }

    fn telemetry(&self) -> &TelemetryLog {
        &self.telemetry
    }

    fn telemetry_mut(&mut self) -> &mut TelemetryLog {
        &mut self.telemetry
    }

    fn cutoff_events(&self) -> u64 {
        self.cutoff_events
    }

    fn hours_since_full(&self) -> f64 {
        self.hours_since_full
    }

    fn total_damage(&self) -> f64 {
        self.aging.total_damage()
    }

    fn capacity_fraction(&self) -> f64 {
        self.aging.capacity_fraction()
    }

    fn aging_breakdown(&self) -> AgingBreakdown {
        self.aging.breakdown()
    }

    fn reserve_duration(&self, power: Watts) -> Option<SimDuration> {
        if power.as_f64() <= 0.0 {
            return Some(SimDuration::from_days(36_500));
        }
        if power > self.available_discharge_power() {
            return None;
        }
        let ocv = self.open_circuit_voltage();
        let current = discharge_current_for_power(power.as_f64(), ocv, self.internal_resistance())?;
        if current.as_f64() <= 0.0 {
            return None;
        }
        let hours = self.stored_charge().as_f64() / current.as_f64();
        Some(SimDuration::from_secs((hours * 3600.0) as u64))
    }

    fn available_discharge_power(&self) -> Watts {
        self.available_discharge_power_at(self.open_circuit_voltage(), self.internal_resistance())
    }

    fn pre_age(&mut self, target_damage: f64) {
        // Representative storage-plus-cycling stress: one hour at 50 %
        // SoC moving 0.5 C of charge at a mildly warm 27 °C.
        let stress = StressSample {
            soc: Soc::saturating(0.5),
            current: Amperes::new(self.spec.capacity().as_f64() * 0.5),
            temperature: Celsius::new(27.0),
            dt: SimDuration::from_hours(1),
            discharged: AmpHours::new(self.spec.capacity().as_f64() * 0.5),
            charged: AmpHours::ZERO,
            overcharge: AmpHours::ZERO,
            capacity: self.spec.capacity(),
            hours_since_full: 10.0,
        };
        let dt_days = stress.dt.as_days();
        let mut guard = 0u32;
        while self.aging.total_damage() < target_damage && guard < 1_000_000 {
            self.aging.apply(&stress, dt_days);
            guard += 1;
        }
    }

    fn try_step(
        &mut self,
        op: BatteryOp,
        ambient: Celsius,
        now: SimInstant,
        dt: SimDuration,
    ) -> Result<StepResult, BatteryError> {
        if let BatteryOp::Discharge(p) | BatteryOp::Charge(p) = op {
            if !p.as_f64().is_finite() {
                return Err(BatteryError::NonFinitePower {
                    requested_w: p.as_f64(),
                });
            }
        }
        let (dt_hours, dt_days) = self.dt_memo.refresh(dt);
        let ocv = self.open_circuit_voltage();
        let r = self.internal_resistance();
        let mut result = match op {
            BatteryOp::Discharge(power) => self.apply_discharge(power, ocv, r, dt_hours),
            BatteryOp::Charge(power) => self.apply_charge(power, ocv, r, dt_hours),
            BatteryOp::Idle => StepResult::idle(ocv),
        };

        // Self-discharge: an order of magnitude below lead-acid, but the
        // same mechanism.
        let leak = self.spec.self_discharge_per_day().value() * dt_days;
        self.soc = Soc::saturating(self.soc.value() - leak);

        let temp = self.thermal.step(result.current, r, ambient, dt);

        if self.soc.value() >= FULL_SOC {
            if self.hours_since_full > 0.0 {
                self.telemetry.record_full_charge();
            }
            self.hours_since_full = 0.0;
        } else {
            self.hours_since_full += dt_hours;
        }

        // Aging integration. No gassing: the charger taper stops before
        // any overcharge region, so `overcharge` is structurally zero.
        let i = result.current.as_f64();
        let (discharged, charged) = if i > 0.0 {
            (AmpHours::new(i * dt_hours), AmpHours::ZERO)
        } else if i < 0.0 {
            (AmpHours::ZERO, AmpHours::new(-i * dt_hours))
        } else {
            (AmpHours::ZERO, AmpHours::ZERO)
        };
        let stress = StressSample {
            soc: self.soc,
            current: result.current,
            temperature: temp,
            dt,
            discharged,
            charged,
            overcharge: AmpHours::ZERO,
            capacity: self.spec.capacity(),
            hours_since_full: self.hours_since_full,
        };
        self.aging.apply(&stress, dt_days);

        // Telemetry obligations: one accumulator record and one sensor
        // sample per step, exactly like lead-acid.
        let energy_out = WattHours::new(result.delivered.as_f64() * dt_hours);
        let energy_in = WattHours::new(result.accepted.as_f64() * dt_hours);
        self.telemetry.record(
            self.soc,
            result.current,
            discharged,
            charged,
            energy_out,
            energy_in,
            dt,
        );
        self.telemetry.push_sample(SensorSample {
            at: now,
            voltage: result.terminal_voltage,
            current: result.current,
            temperature: temp,
            soc: self.soc,
        });

        result.terminal_voltage = terminal_voltage(
            self.open_circuit_voltage(),
            result.current,
            self.internal_resistance(),
        );
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::BatteryModel;

    fn battery() -> LiIonBattery {
        LiIonBattery::new(BatterySpec::li_ion_prototype())
    }

    fn run(b: &mut LiIonBattery, op: BatteryOp, steps: u64, dt_secs: u64) -> Vec<StepResult> {
        let mut now = SimInstant::START;
        let dt = SimDuration::from_secs(dt_secs);
        (0..steps)
            .map(|_| {
                let r = b.step(op, Celsius::new(25.0), now, dt);
                now += dt;
                r
            })
            .collect()
    }

    #[test]
    fn new_battery_is_full_and_healthy() {
        let b = battery();
        assert_eq!(b.soc(), Soc::FULL);
        assert_eq!(b.chemistry(), Chemistry::LiIon);
        assert!(!b.is_end_of_life());
        assert_eq!(b.cutoff_events(), 0);
        assert_eq!(b.total_damage(), 0.0);
    }

    #[test]
    fn discharge_reduces_soc_by_coulomb_count() {
        let mut b = battery();
        run(&mut b, BatteryOp::Discharge(Watts::new(60.0)), 360, 10);
        let soc = b.soc().value();
        // ~60 W at ~13 V ≈ 4.6 A for 1 h of a 35 Ah cell ≈ 13 %.
        assert!((0.82..0.94).contains(&soc), "soc {soc}");
    }

    #[test]
    fn charge_acceptance_tapers_only_near_full() {
        let mut b = battery();
        run(&mut b, BatteryOp::Discharge(Watts::new(150.0)), 360, 10);
        // Mid-SoC charging accepts the full request.
        let mid = run(&mut b, BatteryOp::Charge(Watts::new(100.0)), 1, 10)[0];
        assert!(mid.accepted.as_f64() > 95.0, "{:?}", mid.accepted);
        // Near-full charging tapers.
        b.set_soc(Soc::saturating(0.99));
        let top = run(&mut b, BatteryOp::Charge(Watts::new(100.0)), 1, 10)[0];
        assert!(top.accepted < mid.accepted);
    }

    #[test]
    fn deep_discharge_hits_cutoff_not_negative_soc() {
        let mut b = battery();
        let results = run(&mut b, BatteryOp::Discharge(Watts::new(400.0)), 2_000, 60);
        assert!(b.soc().value() >= 0.0);
        assert!(results.iter().any(|r| r.cutoff));
        assert!(b.cutoff_events() > 0);
    }

    #[test]
    fn aging_splits_into_calendar_and_cycle() {
        let mut b = battery();
        // A day of rest ages only the calendar mechanism...
        run(&mut b, BatteryOp::Idle, 24, 3_600);
        let rested = b.aging_breakdown();
        assert!(rested.get("calendar").unwrap() > 0.0);
        assert_eq!(rested.get("cycle").unwrap(), 0.0);
        // ...and cycling adds cycle damage.
        run(&mut b, BatteryOp::Discharge(Watts::new(150.0)), 120, 60);
        run(&mut b, BatteryOp::Charge(Watts::new(150.0)), 120, 60);
        let cycled = b.aging_breakdown();
        assert!(cycled.get("cycle").unwrap() > 0.0);
        assert_eq!(
            cycled.iter().map(|(l, _)| l).collect::<Vec<_>>(),
            Chemistry::LiIon.aging_labels()
        );
    }

    #[test]
    fn li_ion_ages_slower_than_lead_acid_on_the_same_duty() {
        use crate::model::Battery;
        let mut li = battery();
        let mut pb = Battery::new(BatterySpec::prototype());
        let dt = SimDuration::from_minutes(5);
        let mut now = SimInstant::START;
        for i in 0..2_000u64 {
            let op = if i % 2 == 0 {
                BatteryOp::Discharge(Watts::new(120.0))
            } else {
                BatteryOp::Charge(Watts::new(120.0))
            };
            li.step(op, Celsius::new(25.0), now, dt);
            pb.step(op, Celsius::new(25.0), now, dt);
            now += dt;
        }
        assert!(
            li.total_damage() < pb.aging().total_damage(),
            "li {} vs pb {}",
            li.total_damage(),
            pb.aging().total_damage()
        );
    }

    #[test]
    fn pre_age_reaches_target_without_telemetry() {
        let mut b = battery();
        b.pre_age(0.55);
        assert!(b.total_damage() >= 0.55);
        assert_eq!(b.telemetry().lifetime().observed, SimDuration::ZERO);
        assert!(b.effective_capacity() < BatterySpec::li_ion_prototype().capacity());
    }

    #[test]
    fn non_finite_power_is_rejected_without_mutation() {
        let mut b = battery();
        let before = b.clone();
        let err = b
            .try_step(
                BatteryOp::Discharge(Watts::new(f64::NAN)),
                Celsius::new(25.0),
                SimInstant::START,
                SimDuration::from_minutes(1),
            )
            .unwrap_err();
        assert!(matches!(err, BatteryError::NonFinitePower { .. }));
        assert_eq!(b, before);
    }

    #[test]
    fn steps_replay_bit_identically() {
        let script: Vec<BatteryOp> = (0..500)
            .map(|i| match i % 3 {
                0 => BatteryOp::Discharge(Watts::new(40.0 + f64::from(i))),
                1 => BatteryOp::Charge(Watts::new(60.0)),
                _ => BatteryOp::Idle,
            })
            .collect();
        let play = |script: &[BatteryOp]| {
            let mut b = battery();
            let mut now = SimInstant::START;
            let dt = SimDuration::from_secs(30);
            for op in script {
                b.step(*op, Celsius::new(24.0), now, dt);
                now += dt;
            }
            b
        };
        assert_eq!(play(&script), play(&script));
    }
}
