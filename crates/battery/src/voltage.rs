//! Open-circuit and terminal voltage models.
//!
//! A simplified Shepherd-style model: the open-circuit voltage (OCV) rises
//! linearly with state of charge, and the terminal voltage adds/subtracts
//! the ohmic drop across the internal resistance. Aging scales both the
//! OCV (sag) and the resistance (growth), reproducing the fully-charged
//! terminal-voltage decline of paper Fig 3.

use baat_units::{Amperes, Ohms, Soc, Volts};

/// Fraction of nominal voltage at 0 % SoC (11.82 V for a 12 V battery).
const OCV_BASE_FRACTION: f64 = 0.985;
/// OCV rise from empty to full, as a fraction of nominal voltage.
const OCV_SPAN_FRACTION: f64 = 0.080;

/// Open-circuit voltage of a lead-acid battery at the given state of
/// charge.
///
/// `ocv_factor` is the aging sag multiplier from
/// [`AgingState::ocv_factor`](crate::AgingState::ocv_factor) (1.0 when
/// new).
///
/// # Examples
///
/// ```
/// use baat_battery::open_circuit_voltage;
/// use baat_units::{Soc, Volts};
///
/// let full = open_circuit_voltage(Volts::new(12.0), Soc::FULL, 1.0);
/// let empty = open_circuit_voltage(Volts::new(12.0), Soc::EMPTY, 1.0);
/// assert!(full > empty);
/// ```
pub fn open_circuit_voltage(nominal: Volts, soc: Soc, ocv_factor: f64) -> Volts {
    nominal * (OCV_BASE_FRACTION + OCV_SPAN_FRACTION * soc.value()) * ocv_factor
}

/// Fraction of nominal voltage at 0 % SoC for the Li-ion curve.
const LI_ION_OCV_BASE_FRACTION: f64 = 0.930;
/// Linear OCV rise across the plateau, as a fraction of nominal voltage.
const LI_ION_OCV_PLATEAU_SPAN: f64 = 0.050;
/// Extra OCV rise in the top knee (above [`LI_ION_OCV_KNEE_SOC`]).
const LI_ION_OCV_KNEE_SPAN: f64 = 0.030;
/// SoC where the flat plateau ends and the top knee begins.
const LI_ION_OCV_KNEE_SOC: f64 = 0.90;

/// Open-circuit voltage of an LFP-flavoured Li-ion battery at the given
/// state of charge.
///
/// Unlike the lead-acid curve ([`open_circuit_voltage`]) the Li-ion OCV
/// is nearly flat across the mid-SoC plateau and rises in a knee near
/// full — the signature LFP shape. `ocv_factor` is the (small) aging sag
/// multiplier.
///
/// # Examples
///
/// ```
/// use baat_battery::li_ion_open_circuit_voltage;
/// use baat_units::{Soc, Volts};
///
/// let nominal = Volts::new(12.8);
/// let mid_lo = li_ion_open_circuit_voltage(nominal, Soc::new(0.3).unwrap(), 1.0);
/// let mid_hi = li_ion_open_circuit_voltage(nominal, Soc::new(0.7).unwrap(), 1.0);
/// // The plateau is much flatter than the lead-acid slope.
/// assert!((mid_hi.as_f64() - mid_lo.as_f64()) < 0.3);
/// ```
pub fn li_ion_open_circuit_voltage(nominal: Volts, soc: Soc, ocv_factor: f64) -> Volts {
    let s = soc.value();
    let knee = ((s - LI_ION_OCV_KNEE_SOC).max(0.0)) / (1.0 - LI_ION_OCV_KNEE_SOC);
    let fraction =
        LI_ION_OCV_BASE_FRACTION + LI_ION_OCV_PLATEAU_SPAN * s + LI_ION_OCV_KNEE_SPAN * knee;
    nominal * fraction * ocv_factor
}

/// Terminal voltage under load.
///
/// Positive `current` (discharge) pulls the terminal voltage below OCV by
/// the ohmic drop; negative `current` (charge) pushes it above.
pub fn terminal_voltage(ocv: Volts, current: Amperes, resistance: Ohms) -> Volts {
    ocv - current * resistance
}

/// Solves for the discharge current that delivers `power` at the battery
/// terminals, accounting for the ohmic drop (`P = I·(OCV − I·R)`).
///
/// Returns `None` if the power demand exceeds what the battery can deliver
/// at any current (past the peak of the power-transfer curve), or if the
/// demand is not a finite number (extreme fault injection can drive routed
/// power to `NaN`/`∞`; the guard rejects a `NaN` discriminant instead of
/// letting it flow through `sqrt`).
pub fn discharge_current_for_power(power_w: f64, ocv: Volts, resistance: Ohms) -> Option<Amperes> {
    if power_w <= 0.0 {
        return Some(Amperes::ZERO);
    }
    let v = ocv.as_f64();
    let r = resistance.as_f64();
    // I² R − I V + P = 0 ⇒ I = (V − sqrt(V² − 4 R P)) / (2 R)
    let disc = v * v - 4.0 * r * power_w;
    if disc.is_nan() || disc < 0.0 {
        return None;
    }
    Some(Amperes::new((v - disc.sqrt()) / (2.0 * r)))
}

/// Solves for the charge current that absorbs `power` at the battery
/// terminals, where charging lifts the terminal voltage above OCV
/// (`P = I·(OCV + I·R)`).
///
/// Returns `Some(0 A)` for non-positive power and `None` when the demand
/// is not finite or the solve degenerates (`NaN` discriminant or a
/// non-finite root) — the caller must treat `None` as an invalid request,
/// never as "charge at NaN amps".
pub fn charge_current_for_power(power_w: f64, ocv: Volts, resistance: Ohms) -> Option<Amperes> {
    if power_w <= 0.0 {
        return Some(Amperes::ZERO);
    }
    let v = ocv.as_f64();
    let r = resistance.as_f64();
    // I² R + I V − P = 0 ⇒ I = (−V + sqrt(V² + 4 R P)) / (2 R)
    let disc = v * v + 4.0 * r * power_w;
    if disc.is_nan() || disc < 0.0 {
        return None;
    }
    let i = (-v + disc.sqrt()) / (2.0 * r);
    i.is_finite().then(|| Amperes::new(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc(v: f64) -> Soc {
        Soc::new(v).unwrap()
    }

    #[test]
    fn ocv_rises_with_soc() {
        let nominal = Volts::new(12.0);
        let lo = open_circuit_voltage(nominal, soc(0.2), 1.0);
        let hi = open_circuit_voltage(nominal, soc(0.9), 1.0);
        assert!(hi > lo);
        // Physically plausible lead-acid band.
        assert!(lo.as_f64() > 11.5 && hi.as_f64() < 13.0);
    }

    #[test]
    fn aging_sags_ocv() {
        let nominal = Volts::new(12.0);
        let new = open_circuit_voltage(nominal, Soc::FULL, 1.0);
        let aged = open_circuit_voltage(nominal, Soc::FULL, 0.91);
        assert!((aged.as_f64() / new.as_f64() - 0.91).abs() < 1e-12);
    }

    #[test]
    fn li_ion_ocv_is_flat_mid_plateau_with_a_top_knee() {
        let nominal = Volts::new(12.8);
        let p20 = li_ion_open_circuit_voltage(nominal, soc(0.2), 1.0);
        let p80 = li_ion_open_circuit_voltage(nominal, soc(0.8), 1.0);
        let full = li_ion_open_circuit_voltage(nominal, Soc::FULL, 1.0);
        // Monotone and physically plausible for a 4s LFP pack.
        assert!(p20 < p80 && p80 < full);
        assert!(p20.as_f64() > 11.8 && full.as_f64() < 13.5);
        // The 0.2→0.8 plateau slope is flatter than the lead-acid slope
        // over the same span.
        let li_slope = (p80 - p20).as_f64();
        let pb_slope = (open_circuit_voltage(Volts::new(12.0), soc(0.8), 1.0)
            - open_circuit_voltage(Volts::new(12.0), soc(0.2), 1.0))
        .as_f64();
        assert!(li_slope < pb_slope, "li {li_slope} vs pb {pb_slope}");
    }

    #[test]
    fn terminal_voltage_sags_on_discharge_and_rises_on_charge() {
        let ocv = Volts::new(12.5);
        let r = Ohms::new(0.02);
        let discharging = terminal_voltage(ocv, Amperes::new(10.0), r);
        let charging = terminal_voltage(ocv, Amperes::new(-10.0), r);
        assert!(discharging < ocv);
        assert!(charging > ocv);
        assert!((discharging.as_f64() - 12.3).abs() < 1e-12);
    }

    #[test]
    fn current_solver_matches_power() {
        let ocv = Volts::new(12.5);
        let r = Ohms::new(0.02);
        let i = discharge_current_for_power(100.0, ocv, r).unwrap();
        let v = terminal_voltage(ocv, i, r);
        assert!(((i * v).as_f64() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn current_solver_rejects_impossible_power() {
        // Peak transferable power is V²/4R ≈ 1953 W here.
        let ocv = Volts::new(12.5);
        let r = Ohms::new(0.02);
        assert!(discharge_current_for_power(5_000.0, ocv, r).is_none());
        assert!(discharge_current_for_power(1_000.0, ocv, r).is_some());
    }

    #[test]
    fn zero_power_needs_zero_current() {
        let i = discharge_current_for_power(0.0, Volts::new(12.5), Ohms::new(0.02)).unwrap();
        assert_eq!(i, Amperes::ZERO);
    }

    #[test]
    fn charge_solver_matches_power() {
        let ocv = Volts::new(12.5);
        let r = Ohms::new(0.02);
        let i = charge_current_for_power(100.0, ocv, r).unwrap();
        // Charging current is reported positive here; terminal voltage is
        // OCV + I·R.
        let v = ocv.as_f64() + i.as_f64() * r.as_f64();
        assert!((i.as_f64() * v - 100.0).abs() < 1e-9);
    }

    #[test]
    fn solvers_reject_non_finite_power_instead_of_returning_nan() {
        let ocv = Volts::new(12.5);
        let r = Ohms::new(0.02);
        for p in [f64::NAN, f64::INFINITY] {
            assert!(discharge_current_for_power(p, ocv, r).is_none(), "{p}");
            assert!(charge_current_for_power(p, ocv, r).is_none(), "{p}");
        }
        // −∞ counts as "no demand", like any non-positive power.
        assert_eq!(
            discharge_current_for_power(f64::NEG_INFINITY, ocv, r),
            Some(Amperes::ZERO)
        );
        assert_eq!(
            charge_current_for_power(f64::NEG_INFINITY, ocv, r),
            Some(Amperes::ZERO)
        );
    }
}
