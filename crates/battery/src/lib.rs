//! Battery electrochemistry, aging mechanisms and cycle-life models —
//! the energy-storage substrate of the BAAT reproduction.
//!
//! The paper's prototype (§V.A) uses twelve 12 V 35 Ah sealed lead-acid
//! batteries, one per server. This crate models such units from first
//! principles, behind a pluggable [`BatteryModel`] trait:
//!
//! * [`BatteryModel`] / [`AnyBattery`] / [`Chemistry`] — the chemistry
//!   seam: lead-acid and Li-ion behind one deterministic contract;
//! * [`LiIonBattery`] — an LFP-flavoured equivalent-circuit alternative
//!   with calendar + cycle aging;
//! * [`BatterySpec`] — static parameters (capacity, resistance, cutoff,
//!   manufacturer cycle-life curve), built with a validating builder;
//! * [`Battery`] — the dynamic model: coulomb-counted SoC, Shepherd-style
//!   terminal voltage, charge-acceptance taper, Peukert rate losses,
//!   under-voltage cutoff, first-order thermal model;
//! * [`AgingState`] / [`AgingModel`] — damage accumulation across the five
//!   aging mechanisms of paper §II.B (grid corrosion, active-mass
//!   shedding, sulphation, water loss, electrolyte stratification), mapped
//!   onto capacity fade, resistance growth and OCV sag;
//! * [`Manufacturer`] / [`CycleLifeCurve`] — the Fig 10 cycle-life-vs-DoD
//!   curves used by planned aging (Eq 7);
//! * [`TelemetryLog`] — the Table 2 sensor log plus the usage accumulators
//!   the five aging metrics are computed from;
//! * [`BatteryPack`] — groups of units with seeded manufacturing
//!   variation (the source of aging variation that BAAT-h hides).
//!
//! # Examples
//!
//! Cycle a battery for an hour and inspect its telemetry:
//!
//! ```
//! use baat_battery::{Battery, BatteryOp, BatterySpec};
//! use baat_units::{Celsius, SimDuration, SimInstant, Watts};
//!
//! let mut battery = Battery::new(BatterySpec::prototype());
//! let dt = SimDuration::from_minutes(1);
//! let mut now = SimInstant::START;
//! for _ in 0..60 {
//!     battery.step(BatteryOp::Discharge(Watts::new(80.0)), Celsius::new(25.0), now, dt);
//!     now += dt;
//! }
//! let used = battery.telemetry().lifetime();
//! assert!(used.ah_discharged.as_f64() > 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aging;
mod chemistry;
mod cycle_life;
mod error;
mod liion;
mod model;
mod obs;
mod pack;
mod spec;
mod state;
mod telemetry;
mod thermal;
mod voltage;

pub use aging::{
    ActiveMassShedding, AgingModel, AgingState, DamageBreakdown, GridCorrosion, Mechanism,
    SharedStress, Stratification, StressSample, Sulphation, WaterLoss,
};
pub use chemistry::{AgingBreakdown, AnyBattery, BatteryModel, Chemistry, MAX_AGING_MECHANISMS};
pub use cycle_life::{CycleLifeCurve, Manufacturer, MemoizedCycleLife};
pub use error::BatteryError;
pub use liion::{LiIonAgingState, LiIonBattery};
pub use model::{Battery, BatteryOp, StepResult};
pub use obs::AgingObs;
pub use pack::{BatteryPack, VariationParams};
pub use spec::{BatterySpec, BatterySpecBuilder};
pub use state::{BatteryUnitState, TelemetryState};
pub use telemetry::{SensorSample, TelemetryLog, UsageAccumulator, SOC_HISTOGRAM_BINS};
pub use thermal::ThermalModel;
pub use voltage::{
    charge_current_for_power, discharge_current_for_power, li_ion_open_circuit_voltage,
    open_circuit_voltage, terminal_voltage,
};
