//! Battery packs with unit-to-unit manufacturing variation.
//!
//! The paper (§IV.B.1) attributes aging variation to (1) manufacturing
//! deviations from nominal specifications and (2) differing per-server
//! usage. This module models (1): each unit in a pack draws a capacity
//! scale and an aging-rate multiplier from narrow distributions.

use baat_rng::StdRng;
use baat_units::Ohms;

use crate::aging::{AgingModel, AgingState};
use crate::error::BatteryError;
use crate::model::Battery;
use crate::spec::BatterySpec;

/// Spread parameters for unit-to-unit manufacturing variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationParams {
    /// Half-width of the uniform capacity spread (e.g. 0.03 = ±3 %).
    pub capacity_spread: f64,
    /// Half-width of the uniform internal-resistance spread.
    pub resistance_spread: f64,
    /// Half-width of the uniform aging-rate spread.
    pub aging_rate_spread: f64,
}

impl Default for VariationParams {
    fn default() -> Self {
        Self {
            capacity_spread: 0.03,
            resistance_spread: 0.08,
            aging_rate_spread: 0.10,
        }
    }
}

impl VariationParams {
    /// No variation: every unit is exactly nominal.
    pub const NONE: VariationParams = VariationParams {
        capacity_spread: 0.0,
        resistance_spread: 0.0,
        aging_rate_spread: 0.0,
    };

    fn validate(&self) -> Result<(), BatteryError> {
        for (field, v) in [
            ("capacity_spread", self.capacity_spread),
            ("resistance_spread", self.resistance_spread),
            ("aging_rate_spread", self.aging_rate_spread),
        ] {
            if !(0.0..0.5).contains(&v) {
                return Err(BatteryError::InvalidSpec {
                    field,
                    reason: format!("spread must be in [0, 0.5), got {v}"),
                });
            }
        }
        Ok(())
    }

    fn draw(&self, rng: &mut StdRng, spread: f64) -> f64 {
        if spread == 0.0 {
            1.0
        } else {
            rng.random_range(1.0 - spread..=1.0 + spread)
        }
    }
}

/// A group of battery units deployed together (one per server, or a shared
/// per-rack pool — paper Fig 7 supports both architectures).
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryPack {
    units: Vec<Battery>,
}

impl BatteryPack {
    /// Builds a pack of `count` units from a common spec with seeded
    /// manufacturing variation.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidSpec`] if `count` is zero or any
    /// spread is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), baat_battery::BatteryError> {
    /// use baat_battery::{BatteryPack, BatterySpec, VariationParams};
    ///
    /// let pack = BatteryPack::manufacture(
    ///     BatterySpec::prototype(),
    ///     6,
    ///     VariationParams::default(),
    ///     42,
    /// )?;
    /// assert_eq!(pack.len(), 6);
    /// # Ok(())
    /// # }
    /// ```
    pub fn manufacture(
        spec: BatterySpec,
        count: usize,
        variation: VariationParams,
        seed: u64,
    ) -> Result<Self, BatteryError> {
        if count == 0 {
            return Err(BatteryError::InvalidSpec {
                field: "count",
                reason: "pack must contain at least one battery".to_owned(),
            });
        }
        variation.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let units = (0..count)
            .map(|_| {
                let cap_scale = variation.draw(&mut rng, variation.capacity_spread);
                let r_scale = variation.draw(&mut rng, variation.resistance_spread);
                let rate = variation.draw(&mut rng, variation.aging_rate_spread);
                // Per-unit resistance deviation folds into the spec.
                let unit_spec = {
                    let mut b = BatterySpec::builder();
                    b.nominal_voltage(spec.nominal_voltage())
                        .capacity(spec.capacity())
                        .internal_resistance(Ohms::new(
                            spec.internal_resistance().as_f64() * r_scale,
                        ))
                        .cutoff_voltage(spec.cutoff_voltage())
                        .max_charge_current(spec.max_charge_current())
                        .max_discharge_current(spec.max_discharge_current())
                        .lifetime_throughput(spec.lifetime_throughput())
                        .manufacturer(spec.manufacturer())
                        .coulombic_efficiency(spec.coulombic_efficiency())
                        .self_discharge_per_day(spec.self_discharge_per_day())
                        .ambient(spec.ambient());
                    b.build().expect("derived spec stays valid")
                };
                let aging = AgingState::new(
                    AgingModel::new(unit_spec.lifetime_throughput().as_f64())
                        .with_rate_multiplier(rate),
                );
                Battery::with_aging(unit_spec, aging, cap_scale)
            })
            .collect();
        Ok(Self { units })
    }

    /// Builds a pack of identical nominal units (no variation).
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidSpec`] if `count` is zero.
    pub fn uniform(spec: BatterySpec, count: usize) -> Result<Self, BatteryError> {
        Self::manufacture(spec, count, VariationParams::NONE, 0)
    }

    /// Number of units in the pack.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// `true` if the pack holds no units (never true for constructed
    /// packs).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Immutable view of a unit.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::UnknownBattery`] for an out-of-range index.
    pub fn unit(&self, index: usize) -> Result<&Battery, BatteryError> {
        self.units.get(index).ok_or(BatteryError::UnknownBattery {
            index,
            len: self.units.len(),
        })
    }

    /// Mutable view of a unit.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::UnknownBattery`] for an out-of-range index.
    pub fn unit_mut(&mut self, index: usize) -> Result<&mut Battery, BatteryError> {
        let len = self.units.len();
        self.units
            .get_mut(index)
            .ok_or(BatteryError::UnknownBattery { index, len })
    }

    /// Iterates over the units.
    pub fn iter(&self) -> impl Iterator<Item = &Battery> {
        self.units.iter()
    }

    /// Iterates mutably over the units.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Battery> {
        self.units.iter_mut()
    }

    /// Index of the unit with the highest accumulated damage (the paper's
    /// "worst battery node").
    pub fn most_aged(&self) -> usize {
        self.units
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.aging()
                    .total_damage()
                    .total_cmp(&b.aging().total_damage())
            })
            .map(|(i, _)| i)
            .expect("pack is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::{Celsius, SimDuration, SimInstant, Watts};

    use crate::model::BatteryOp;

    #[test]
    fn manufacture_is_deterministic_per_seed() {
        let a =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 7)
                .unwrap();
        let b =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 7)
                .unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.effective_capacity(), y.effective_capacity());
        }
    }

    #[test]
    fn different_seeds_give_different_units() {
        let a =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 1)
                .unwrap();
        let b =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 2)
                .unwrap();
        let same = a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.effective_capacity() == y.effective_capacity());
        assert!(!same);
    }

    #[test]
    fn variation_stays_within_spread() {
        let pack =
            BatteryPack::manufacture(BatterySpec::prototype(), 50, VariationParams::default(), 3)
                .unwrap();
        for unit in pack.iter() {
            let cap = unit.effective_capacity().as_f64();
            assert!((35.0 * 0.97..=35.0 * 1.03).contains(&cap), "cap {cap}");
            let rate = unit.aging().model().rate_multiplier();
            assert!((0.9..=1.1).contains(&rate), "rate {rate}");
        }
    }

    #[test]
    fn uniform_pack_has_identical_units() {
        let pack = BatteryPack::uniform(BatterySpec::prototype(), 4).unwrap();
        let cap0 = pack.unit(0).unwrap().effective_capacity();
        assert!(pack.iter().all(|u| u.effective_capacity() == cap0));
    }

    #[test]
    fn empty_pack_is_rejected() {
        assert!(BatteryPack::uniform(BatterySpec::prototype(), 0).is_err());
    }

    #[test]
    fn unknown_index_is_an_error() {
        let pack = BatteryPack::uniform(BatterySpec::prototype(), 2).unwrap();
        assert!(matches!(
            pack.unit(5),
            Err(BatteryError::UnknownBattery { index: 5, len: 2 })
        ));
    }

    #[test]
    fn most_aged_tracks_heavier_usage() {
        let mut pack = BatteryPack::uniform(BatterySpec::prototype(), 3).unwrap();
        let dt = SimDuration::from_minutes(10);
        let mut now = SimInstant::START;
        for _ in 0..200 {
            // Unit 1 works much harder than the others.
            pack.unit_mut(0).unwrap().step(
                BatteryOp::Discharge(Watts::new(10.0)),
                Celsius::new(25.0),
                now,
                dt,
            );
            pack.unit_mut(1).unwrap().step(
                BatteryOp::Discharge(Watts::new(150.0)),
                Celsius::new(25.0),
                now,
                dt,
            );
            pack.unit_mut(2)
                .unwrap()
                .step(BatteryOp::Idle, Celsius::new(25.0), now, dt);
            now += dt;
        }
        assert_eq!(pack.most_aged(), 1);
    }

    #[test]
    fn aging_rate_variation_produces_aging_spread() {
        // Identical usage, different units → different damage (paper
        // §IV.B.1 aging variation).
        let mut pack =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 11)
                .unwrap();
        let dt = SimDuration::from_minutes(10);
        let mut now = SimInstant::START;
        for _ in 0..500 {
            for unit in pack.iter_mut() {
                unit.step(
                    BatteryOp::Discharge(Watts::new(80.0)),
                    Celsius::new(25.0),
                    now,
                    dt,
                );
            }
            now += dt;
        }
        let damages: Vec<f64> = pack.iter().map(|u| u.aging().total_damage()).collect();
        let min = damages.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = damages.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.02, "damage spread expected: {damages:?}");
        // Damage must track the drawn aging-rate multiplier: the
        // normalized damage (damage / rate) is nearly unit-independent.
        let normalized: Vec<f64> = pack
            .iter()
            .map(|u| u.aging().total_damage() / u.aging().model().rate_multiplier())
            .collect();
        let n_min = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
        let n_max = normalized.iter().cloned().fold(0.0, f64::max);
        assert!(
            n_max / n_min < 1.05,
            "normalized damage should collapse: {normalized:?}"
        );
    }
}
