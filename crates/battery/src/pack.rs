//! Battery packs with unit-to-unit manufacturing variation.
//!
//! The paper (§IV.B.1) attributes aging variation to (1) manufacturing
//! deviations from nominal specifications and (2) differing per-server
//! usage. This module models (1): each unit in a pack draws a capacity
//! scale and an aging-rate multiplier from narrow distributions.

use baat_rng::StdRng;
use baat_units::{Fraction, Ohms, Scale};

use crate::aging::{AgingModel, AgingState};
use crate::chemistry::{AnyBattery, BatteryModel, Chemistry};
use crate::error::BatteryError;
use crate::liion::LiIonBattery;
use crate::model::Battery;
use crate::spec::BatterySpec;

/// Spread parameters for unit-to-unit manufacturing variation.
///
/// Construct with [`VariationParams::new`] (validated [`Fraction`]
/// spreads), or use [`VariationParams::NONE`] / `default()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationParams {
    capacity_spread: f64,
    resistance_spread: f64,
    aging_rate_spread: f64,
}

impl Default for VariationParams {
    fn default() -> Self {
        Self {
            capacity_spread: 0.03,
            resistance_spread: 0.08,
            aging_rate_spread: 0.10,
        }
    }
}

impl VariationParams {
    /// No variation: every unit is exactly nominal.
    pub const NONE: VariationParams = VariationParams {
        capacity_spread: 0.0,
        resistance_spread: 0.0,
        aging_rate_spread: 0.0,
    };

    /// Builds validated spread parameters. Each spread is the half-width
    /// of a uniform distribution around 1.0 (e.g. 0.03 = ±3 %).
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidSpec`] if any spread is ≥ 0.5 (a
    /// half-width that large would allow non-positive scales).
    pub fn new(
        capacity_spread: Fraction,
        resistance_spread: Fraction,
        aging_rate_spread: Fraction,
    ) -> Result<Self, BatteryError> {
        let params = Self {
            capacity_spread: capacity_spread.value(),
            resistance_spread: resistance_spread.value(),
            aging_rate_spread: aging_rate_spread.value(),
        };
        params.validate()?;
        Ok(params)
    }

    /// Builds spread parameters from raw `f64` values without
    /// validation (they are checked at
    /// [`BatteryPack::manufacture`] time, as the old public fields
    /// were).
    #[deprecated(note = "use VariationParams::new with Fraction spreads")]
    pub fn from_spreads(
        capacity_spread: f64,
        resistance_spread: f64,
        aging_rate_spread: f64,
    ) -> Self {
        Self {
            capacity_spread,
            resistance_spread,
            aging_rate_spread,
        }
    }

    /// Half-width of the uniform capacity spread.
    pub fn capacity_spread(&self) -> f64 {
        self.capacity_spread
    }

    /// Half-width of the uniform internal-resistance spread.
    pub fn resistance_spread(&self) -> f64 {
        self.resistance_spread
    }

    /// Half-width of the uniform aging-rate spread.
    pub fn aging_rate_spread(&self) -> f64 {
        self.aging_rate_spread
    }

    fn validate(&self) -> Result<(), BatteryError> {
        for (field, v) in [
            ("capacity_spread", self.capacity_spread),
            ("resistance_spread", self.resistance_spread),
            ("aging_rate_spread", self.aging_rate_spread),
        ] {
            if !(0.0..0.5).contains(&v) {
                return Err(BatteryError::InvalidSpec {
                    field,
                    reason: format!("spread must be in [0, 0.5), got {v}"),
                });
            }
        }
        Ok(())
    }

    fn draw(&self, rng: &mut StdRng, spread: f64) -> f64 {
        if spread == 0.0 {
            1.0
        } else {
            rng.random_range(1.0 - spread..=1.0 + spread)
        }
    }
}

/// A group of battery units deployed together (one per server, or a shared
/// per-rack pool — paper Fig 7 supports both architectures).
///
/// Units are [`AnyBattery`] values: the pack's [`BatterySpec`] chemistry
/// decides which dynamic model each unit runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryPack {
    units: Vec<AnyBattery>,
}

impl BatteryPack {
    /// Builds a pack of `count` units from a common spec with seeded
    /// manufacturing variation.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidSpec`] if `count` is zero or any
    /// spread is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), baat_battery::BatteryError> {
    /// use baat_battery::{BatteryPack, BatterySpec, VariationParams};
    ///
    /// let pack = BatteryPack::manufacture(
    ///     BatterySpec::prototype(),
    ///     6,
    ///     VariationParams::default(),
    ///     42,
    /// )?;
    /// assert_eq!(pack.len(), 6);
    /// # Ok(())
    /// # }
    /// ```
    pub fn manufacture(
        spec: BatterySpec,
        count: usize,
        variation: VariationParams,
        seed: u64,
    ) -> Result<Self, BatteryError> {
        if count == 0 {
            return Err(BatteryError::InvalidSpec {
                field: "count",
                reason: "pack must contain at least one battery".to_owned(),
            });
        }
        variation.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let units = (0..count)
            .map(|_| {
                // The draw order (capacity, resistance, rate) is part of
                // the determinism contract: changing it would reshuffle
                // every seeded fleet.
                let cap_scale = variation.draw(&mut rng, variation.capacity_spread);
                let r_scale = variation.draw(&mut rng, variation.resistance_spread);
                let rate = variation.draw(&mut rng, variation.aging_rate_spread);
                // Per-unit resistance deviation folds into the spec.
                let unit_spec = {
                    let mut b = BatterySpec::builder();
                    b.chemistry(spec.chemistry())
                        .nominal_voltage(spec.nominal_voltage())
                        .capacity(spec.capacity())
                        .internal_resistance(Ohms::new(
                            spec.internal_resistance().as_f64() * r_scale,
                        ))
                        .cutoff_voltage(spec.cutoff_voltage())
                        .max_charge_current(spec.max_charge_current())
                        .max_discharge_current(spec.max_discharge_current())
                        .lifetime_throughput(spec.lifetime_throughput())
                        .manufacturer(spec.manufacturer())
                        .coulombic_efficiency(spec.coulombic_efficiency())
                        .self_discharge_per_day(spec.self_discharge_per_day())
                        .ambient(spec.ambient());
                    b.build().expect("derived spec stays valid")
                };
                let cap_scale = Scale::new(cap_scale).expect("drawn scale is positive");
                let rate_scale = Scale::new(rate).expect("drawn rate is positive");
                match unit_spec.chemistry() {
                    Chemistry::LeadAcid => {
                        let aging = AgingState::new(
                            AgingModel::new(unit_spec.lifetime_throughput().as_f64())
                                .with_rate_multiplier(rate),
                        );
                        AnyBattery::LeadAcid(Battery::with_aging(unit_spec, aging, cap_scale))
                    }
                    Chemistry::LiIon => AnyBattery::LiIon(LiIonBattery::with_variation(
                        unit_spec, rate_scale, cap_scale,
                    )),
                }
            })
            .collect();
        Ok(Self { units })
    }

    /// Builds a pack of identical nominal units (no variation).
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidSpec`] if `count` is zero.
    pub fn uniform(spec: BatterySpec, count: usize) -> Result<Self, BatteryError> {
        Self::manufacture(spec, count, VariationParams::NONE, 0)
    }

    /// Number of units in the pack.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// `true` if the pack holds no units (never true for constructed
    /// packs).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Immutable view of a unit.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::UnknownBattery`] for an out-of-range index.
    pub fn unit(&self, index: usize) -> Result<&AnyBattery, BatteryError> {
        self.units.get(index).ok_or(BatteryError::UnknownBattery {
            index,
            len: self.units.len(),
        })
    }

    /// Mutable view of a unit.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::UnknownBattery`] for an out-of-range index.
    pub fn unit_mut(&mut self, index: usize) -> Result<&mut AnyBattery, BatteryError> {
        let len = self.units.len();
        self.units
            .get_mut(index)
            .ok_or(BatteryError::UnknownBattery { index, len })
    }

    /// Iterates over the units.
    pub fn iter(&self) -> impl Iterator<Item = &AnyBattery> {
        self.units.iter()
    }

    /// Iterates mutably over the units.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut AnyBattery> {
        self.units.iter_mut()
    }

    /// The units as one mutable slice — the sharding seam: the engine
    /// splits the pack into disjoint per-bank ranges (`split_at_mut`)
    /// so independent banks step on separate threads. Each unit owns
    /// its memo caches, so a `&mut` range is safe to step in isolation.
    pub fn units_mut(&mut self) -> &mut [AnyBattery] {
        &mut self.units
    }

    /// Index of the unit with the highest accumulated damage (the paper's
    /// "worst battery node").
    pub fn most_aged(&self) -> usize {
        self.units
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_damage().total_cmp(&b.total_damage()))
            .map(|(i, _)| i)
            .expect("pack is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::{Celsius, SimDuration, SimInstant, Watts};

    use crate::model::BatteryOp;

    #[test]
    fn manufacture_is_deterministic_per_seed() {
        let a =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 7)
                .unwrap();
        let b =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 7)
                .unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.effective_capacity(), y.effective_capacity());
        }
    }

    #[test]
    fn different_seeds_give_different_units() {
        let a =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 1)
                .unwrap();
        let b =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 2)
                .unwrap();
        let same = a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.effective_capacity() == y.effective_capacity());
        assert!(!same);
    }

    #[test]
    fn variation_stays_within_spread() {
        let pack =
            BatteryPack::manufacture(BatterySpec::prototype(), 50, VariationParams::default(), 3)
                .unwrap();
        for unit in pack.iter() {
            let cap = unit.effective_capacity().as_f64();
            assert!((35.0 * 0.97..=35.0 * 1.03).contains(&cap), "cap {cap}");
            let rate = unit
                .as_lead_acid()
                .unwrap()
                .aging()
                .model()
                .rate_multiplier();
            assert!((0.9..=1.1).contains(&rate), "rate {rate}");
        }
    }

    #[test]
    fn uniform_pack_has_identical_units() {
        let pack = BatteryPack::uniform(BatterySpec::prototype(), 4).unwrap();
        let cap0 = pack.unit(0).unwrap().effective_capacity();
        assert!(pack.iter().all(|u| u.effective_capacity() == cap0));
    }

    #[test]
    fn empty_pack_is_rejected() {
        assert!(BatteryPack::uniform(BatterySpec::prototype(), 0).is_err());
    }

    #[test]
    fn unknown_index_is_an_error() {
        let pack = BatteryPack::uniform(BatterySpec::prototype(), 2).unwrap();
        assert!(matches!(
            pack.unit(5),
            Err(BatteryError::UnknownBattery { index: 5, len: 2 })
        ));
    }

    #[test]
    fn most_aged_tracks_heavier_usage() {
        let mut pack = BatteryPack::uniform(BatterySpec::prototype(), 3).unwrap();
        let dt = SimDuration::from_minutes(10);
        let mut now = SimInstant::START;
        for _ in 0..200 {
            // Unit 1 works much harder than the others.
            pack.unit_mut(0).unwrap().step(
                BatteryOp::Discharge(Watts::new(10.0)),
                Celsius::new(25.0),
                now,
                dt,
            );
            pack.unit_mut(1).unwrap().step(
                BatteryOp::Discharge(Watts::new(150.0)),
                Celsius::new(25.0),
                now,
                dt,
            );
            pack.unit_mut(2)
                .unwrap()
                .step(BatteryOp::Idle, Celsius::new(25.0), now, dt);
            now += dt;
        }
        assert_eq!(pack.most_aged(), 1);
    }

    #[test]
    fn aging_rate_variation_produces_aging_spread() {
        // Identical usage, different units → different damage (paper
        // §IV.B.1 aging variation).
        let mut pack =
            BatteryPack::manufacture(BatterySpec::prototype(), 6, VariationParams::default(), 11)
                .unwrap();
        let dt = SimDuration::from_minutes(10);
        let mut now = SimInstant::START;
        for _ in 0..500 {
            for unit in pack.iter_mut() {
                unit.step(
                    BatteryOp::Discharge(Watts::new(80.0)),
                    Celsius::new(25.0),
                    now,
                    dt,
                );
            }
            now += dt;
        }
        let damages: Vec<f64> = pack.iter().map(|u| u.total_damage()).collect();
        let min = damages.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = damages.iter().cloned().fold(0.0, f64::max);
        assert!(max > min * 1.02, "damage spread expected: {damages:?}");
        // Damage must track the drawn aging-rate multiplier: the
        // normalized damage (damage / rate) is nearly unit-independent.
        let normalized: Vec<f64> = pack
            .iter()
            .map(|u| {
                let pb = u.as_lead_acid().unwrap();
                pb.total_damage() / pb.aging().model().rate_multiplier()
            })
            .collect();
        let n_min = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
        let n_max = normalized.iter().cloned().fold(0.0, f64::max);
        assert!(
            n_max / n_min < 1.05,
            "normalized damage should collapse: {normalized:?}"
        );
    }

    #[test]
    fn li_ion_spec_manufactures_li_ion_units_with_variation() {
        let pack = BatteryPack::manufacture(
            BatterySpec::li_ion_prototype(),
            8,
            VariationParams::default(),
            21,
        )
        .unwrap();
        let mut caps = Vec::new();
        for unit in pack.iter() {
            let li = unit.as_li_ion().expect("chemistry must follow the spec");
            assert!((0.9..=1.1).contains(&li.aging().rate_multiplier()));
            caps.push(unit.effective_capacity().as_f64());
        }
        assert!(caps.iter().any(|c| (c - caps[0]).abs() > 1e-9));
    }

    #[test]
    fn variation_params_reject_wide_spreads() {
        assert!(
            VariationParams::new(Fraction::saturating(0.5), Fraction::ZERO, Fraction::ZERO)
                .is_err()
        );
        let p = VariationParams::new(
            Fraction::saturating(0.03),
            Fraction::saturating(0.08),
            Fraction::saturating(0.10),
        )
        .unwrap();
        assert_eq!(p, VariationParams::default());
    }
}
