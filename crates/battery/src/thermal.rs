//! First-order battery thermal model.
//!
//! Internal dissipation (`I²R`) heats the cell toward a steady-state
//! temperature above ambient; the cell relaxes toward that target with a
//! first-order time constant. Temperature feeds the Arrhenius acceleration
//! of every aging mechanism (a 10 °C rise halves lifetime, §III.E).

use baat_units::{Amperes, Celsius, Ohms, SimDuration};

/// First-order thermal state of one battery unit.
#[derive(Debug, Clone, Copy)]
pub struct ThermalModel {
    temperature: Celsius,
    /// Steady-state temperature rise per watt dissipated (K/W).
    thermal_resistance: f64,
    /// First-order time constant, seconds.
    time_constant_s: f64,
    /// Step length whose relaxation factor is cached in `cached_alpha`.
    ///
    /// Simulations step with a fixed `dt`, so the `exp` in the relaxation
    /// factor is re-evaluated only when the step length changes. The
    /// initial `(0, 0.0)` pair is itself exact: `1 − exp(0) = 0`.
    cached_dt_secs: u64,
    /// `1 − exp(−dt / τ)` for `cached_dt_secs`.
    cached_alpha: f64,
}

/// Equality is semantic: two models match when their physical state and
/// parameters match, regardless of what step length their memoized
/// relaxation factors were last evaluated for (the memo never changes
/// results, only whether `exp` is re-evaluated).
impl PartialEq for ThermalModel {
    fn eq(&self, other: &Self) -> bool {
        self.temperature == other.temperature
            && self.thermal_resistance == other.thermal_resistance
            && self.time_constant_s == other.time_constant_s
    }
}

impl ThermalModel {
    /// Creates a thermal model starting at the given ambient temperature.
    pub fn new(ambient: Celsius, thermal_resistance: f64, time_constant_s: f64) -> Self {
        Self {
            temperature: ambient,
            thermal_resistance,
            time_constant_s,
            cached_dt_secs: 0,
            cached_alpha: 0.0,
        }
    }

    /// Current battery surface temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Overrides the thermal state (checkpoint restore). The relaxation
    /// memo is untouched — it is an exact replay cache keyed on `dt`.
    pub fn set_temperature(&mut self, temperature: Celsius) {
        self.temperature = temperature;
    }

    /// Advances the thermal state one step.
    ///
    /// `current` is the battery current (either sign), `resistance` the
    /// present internal resistance; dissipation is `I²R`.
    pub fn step(
        &mut self,
        current: Amperes,
        resistance: Ohms,
        ambient: Celsius,
        dt: SimDuration,
    ) -> Celsius {
        let i = current.as_f64();
        let dissipation_w = i * i * resistance.as_f64();
        let target = ambient.as_f64() + self.thermal_resistance * dissipation_w;
        if dt.as_secs() != self.cached_dt_secs {
            self.cached_dt_secs = dt.as_secs();
            self.cached_alpha = 1.0 - (-(dt.as_secs() as f64) / self.time_constant_s).exp();
        }
        let alpha = self.cached_alpha;
        let t = self.temperature.as_f64() + (target - self.temperature.as_f64()) * alpha;
        self.temperature = Celsius::new(t);
        self.temperature
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::new(Celsius::new(25.0), 4.0, 3_600.0)
    }

    #[test]
    fn idle_battery_tracks_ambient() {
        let mut m = model();
        for _ in 0..100 {
            m.step(
                Amperes::ZERO,
                Ohms::new(0.012),
                Celsius::new(30.0),
                SimDuration::from_minutes(10),
            );
        }
        assert!((m.temperature().as_f64() - 30.0).abs() < 0.1);
    }

    #[test]
    fn heavy_discharge_heats_the_cell() {
        let mut m = model();
        for _ in 0..100 {
            m.step(
                Amperes::new(30.0),
                Ohms::new(0.012),
                Celsius::new(25.0),
                SimDuration::from_minutes(10),
            );
        }
        // Steady state: 25 + 4 × 30² × 0.012 = 25 + 43.2 ≈ 68 °C target;
        // after 1000 min it should be well above ambient.
        assert!(m.temperature().as_f64() > 60.0);
    }

    #[test]
    fn heating_is_symmetric_in_current_sign() {
        let mut d = model();
        let mut c = model();
        for _ in 0..10 {
            d.step(
                Amperes::new(10.0),
                Ohms::new(0.012),
                Celsius::new(25.0),
                SimDuration::from_minutes(5),
            );
            c.step(
                Amperes::new(-10.0),
                Ohms::new(0.012),
                Celsius::new(25.0),
                SimDuration::from_minutes(5),
            );
        }
        assert!((d.temperature().as_f64() - c.temperature().as_f64()).abs() < 1e-9);
    }

    #[test]
    fn memoized_alpha_is_bit_identical_to_direct_formula() {
        // Alternate step lengths so the cache is exercised through both
        // hits and misses; the trajectory must match an uncached
        // evaluation bit for bit.
        let mut m = model();
        let mut direct_t = m.temperature().as_f64();
        let dts = [600u64, 600, 120, 120, 120, 600, 300, 300, 0, 600];
        for (k, &secs) in dts.iter().enumerate() {
            let amps = Amperes::new((k % 4) as f64 * 8.0);
            let got = m
                .step(
                    amps,
                    Ohms::new(0.012),
                    Celsius::new(25.0),
                    SimDuration::from_secs(secs),
                )
                .as_f64();
            let dissipation = amps.as_f64() * amps.as_f64() * 0.012;
            let target = 25.0 + 4.0 * dissipation;
            let alpha = 1.0 - (-(secs as f64) / 3_600.0).exp();
            direct_t += (target - direct_t) * alpha;
            assert_eq!(got.to_bits(), direct_t.to_bits(), "step {k} (dt {secs}s)");
        }
    }

    #[test]
    fn equality_ignores_the_alpha_cache() {
        let mut warmed = model();
        warmed.step(
            Amperes::ZERO,
            Ohms::new(0.012),
            Celsius::new(25.0),
            SimDuration::from_secs(600),
        );
        let mut cold = model();
        cold.step(
            Amperes::ZERO,
            Ohms::new(0.012),
            Celsius::new(25.0),
            SimDuration::from_secs(600),
        );
        // Same trajectory, different cache histories: still equal.
        cold.cached_dt_secs = 0;
        cold.cached_alpha = 0.0;
        assert_eq!(warmed, cold);
    }

    #[test]
    fn first_order_response_is_progressive() {
        let mut m = model();
        let t0 = m.temperature().as_f64();
        let t1 = m
            .step(
                Amperes::new(30.0),
                Ohms::new(0.012),
                Celsius::new(25.0),
                SimDuration::from_minutes(10),
            )
            .as_f64();
        let target = 25.0 + 4.0 * 30.0 * 30.0 * 0.012;
        assert!(t1 > t0 && t1 < target, "response must be gradual");
    }
}
