//! First-order battery thermal model.
//!
//! Internal dissipation (`I²R`) heats the cell toward a steady-state
//! temperature above ambient; the cell relaxes toward that target with a
//! first-order time constant. Temperature feeds the Arrhenius acceleration
//! of every aging mechanism (a 10 °C rise halves lifetime, §III.E).

use baat_units::{Amperes, Celsius, Ohms, SimDuration};

/// First-order thermal state of one battery unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    temperature: Celsius,
    /// Steady-state temperature rise per watt dissipated (K/W).
    thermal_resistance: f64,
    /// First-order time constant, seconds.
    time_constant_s: f64,
}

impl ThermalModel {
    /// Creates a thermal model starting at the given ambient temperature.
    pub fn new(ambient: Celsius, thermal_resistance: f64, time_constant_s: f64) -> Self {
        Self {
            temperature: ambient,
            thermal_resistance,
            time_constant_s,
        }
    }

    /// Current battery surface temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Advances the thermal state one step.
    ///
    /// `current` is the battery current (either sign), `resistance` the
    /// present internal resistance; dissipation is `I²R`.
    pub fn step(
        &mut self,
        current: Amperes,
        resistance: Ohms,
        ambient: Celsius,
        dt: SimDuration,
    ) -> Celsius {
        let i = current.as_f64();
        let dissipation_w = i * i * resistance.as_f64();
        let target = ambient.as_f64() + self.thermal_resistance * dissipation_w;
        let alpha = 1.0 - (-(dt.as_secs() as f64) / self.time_constant_s).exp();
        let t = self.temperature.as_f64() + (target - self.temperature.as_f64()) * alpha;
        self.temperature = Celsius::new(t);
        self.temperature
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::new(Celsius::new(25.0), 4.0, 3_600.0)
    }

    #[test]
    fn idle_battery_tracks_ambient() {
        let mut m = model();
        for _ in 0..100 {
            m.step(
                Amperes::ZERO,
                Ohms::new(0.012),
                Celsius::new(30.0),
                SimDuration::from_minutes(10),
            );
        }
        assert!((m.temperature().as_f64() - 30.0).abs() < 0.1);
    }

    #[test]
    fn heavy_discharge_heats_the_cell() {
        let mut m = model();
        for _ in 0..100 {
            m.step(
                Amperes::new(30.0),
                Ohms::new(0.012),
                Celsius::new(25.0),
                SimDuration::from_minutes(10),
            );
        }
        // Steady state: 25 + 4 × 30² × 0.012 = 25 + 43.2 ≈ 68 °C target;
        // after 1000 min it should be well above ambient.
        assert!(m.temperature().as_f64() > 60.0);
    }

    #[test]
    fn heating_is_symmetric_in_current_sign() {
        let mut d = model();
        let mut c = model();
        for _ in 0..10 {
            d.step(
                Amperes::new(10.0),
                Ohms::new(0.012),
                Celsius::new(25.0),
                SimDuration::from_minutes(5),
            );
            c.step(
                Amperes::new(-10.0),
                Ohms::new(0.012),
                Celsius::new(25.0),
                SimDuration::from_minutes(5),
            );
        }
        assert!((d.temperature().as_f64() - c.temperature().as_f64()).abs() < 1e-9);
    }

    #[test]
    fn first_order_response_is_progressive() {
        let mut m = model();
        let t0 = m.temperature().as_f64();
        let t1 = m
            .step(
                Amperes::new(30.0),
                Ohms::new(0.012),
                Celsius::new(25.0),
                SimDuration::from_minutes(10),
            )
            .as_f64();
        let target = 25.0 + 4.0 * 30.0 * 30.0 * 0.012;
        assert!(t1 > t0 && t1 < target, "response must be gradual");
    }
}
