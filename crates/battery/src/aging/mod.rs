//! Damage-accumulation aging model.
//!
//! Aging is "a synergistic effect" of five mechanisms (paper §II.B). This
//! module integrates the per-mechanism damage of
//! [`mechanisms`](self::mechanisms) into an [`AgingState`] and maps total
//! damage onto observable degradation:
//!
//! * **capacity fade** — end-of-life is 80 % of initial capacity at total
//!   damage 1.0 (paper cites [30]);
//! * **internal-resistance growth** — drives the round-trip-efficiency drop
//!   of paper Fig 5;
//! * **open-circuit-voltage sag** — drives the fully-charged terminal
//!   voltage drop of paper Fig 3.

mod mechanisms;
mod stress;

pub use mechanisms::{
    ActiveMassShedding, GridCorrosion, Mechanism, Stratification, Sulphation, WaterLoss,
};
pub use stress::{SharedStress, StressSample};

/// Per-mechanism accumulated damage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DamageBreakdown {
    /// Grid corrosion damage.
    pub corrosion: f64,
    /// Active-mass shedding damage.
    pub shedding: f64,
    /// Irreversible sulphation damage.
    pub sulphation: f64,
    /// Water-loss (drying out) damage.
    pub water_loss: f64,
    /// Electrolyte stratification damage.
    pub stratification: f64,
}

impl DamageBreakdown {
    /// Total damage across all mechanisms.
    pub fn total(&self) -> f64 {
        self.corrosion + self.shedding + self.sulphation + self.water_loss + self.stratification
    }

    /// Iterator over `(mechanism name, damage)` pairs, in §II.B order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> {
        [
            ("corrosion", self.corrosion),
            ("shedding", self.shedding),
            ("sulphation", self.sulphation),
            ("water_loss", self.water_loss),
            ("stratification", self.stratification),
        ]
        .into_iter()
    }
}

/// The aging model: the five mechanisms plus the damage→degradation
/// mapping coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingModel {
    corrosion: GridCorrosion,
    shedding: ActiveMassShedding,
    sulphation: Sulphation,
    water_loss: WaterLoss,
    stratification: Stratification,
    /// Capacity fraction lost per unit damage (0.2 ⇒ damage 1.0 = 80 %).
    capacity_fade_per_damage: f64,
    /// Relative resistance growth per unit damage.
    resistance_growth_per_damage: f64,
    /// Relative open-circuit-voltage sag per unit damage.
    ocv_sag_per_damage: f64,
    /// Unit-to-unit aging-rate multiplier (manufacturing variation).
    rate_multiplier: f64,
}

impl AgingModel {
    /// Creates the aging model for a battery with the given nominal
    /// life-long Ah throughput.
    pub fn new(lifetime_throughput_ah: f64) -> Self {
        Self {
            corrosion: GridCorrosion::default(),
            shedding: ActiveMassShedding::for_lifetime_throughput(lifetime_throughput_ah),
            sulphation: Sulphation::default(),
            water_loss: WaterLoss::default(),
            stratification: Stratification::default(),
            capacity_fade_per_damage: 0.20,
            resistance_growth_per_damage: 1.20,
            ocv_sag_per_damage: 0.11,
            rate_multiplier: 1.0,
        }
    }

    /// Applies a unit-to-unit manufacturing-variation multiplier to all
    /// damage rates (paper §IV.B.1: imperfect manufacturing causes aging
    /// variation).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `multiplier` is not positive and finite.
    pub fn with_rate_multiplier(mut self, multiplier: f64) -> Self {
        debug_assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "invalid rate multiplier"
        );
        self.rate_multiplier = multiplier;
        self
    }

    /// The unit-to-unit aging-rate multiplier.
    pub fn rate_multiplier(&self) -> f64 {
        self.rate_multiplier
    }

    /// Computes the damage increment for one step of stress, broken down by
    /// mechanism.
    pub fn incremental_damage(&self, s: &StressSample) -> DamageBreakdown {
        self.incremental_damage_at(s, &SharedStress::of(s))
    }

    /// Like [`AgingModel::incremental_damage`], with the shared stress
    /// factors supplied by the caller (`shared` must equal
    /// `SharedStress::of(s)`). The Arrhenius `powf` and the hour/C-rate
    /// divides are each computed once per sample — or replayed from a
    /// memo for a repeated temperature — which is an exact substitution.
    pub fn incremental_damage_at(
        &self,
        s: &StressSample,
        shared: &SharedStress,
    ) -> DamageBreakdown {
        let m = self.rate_multiplier;
        DamageBreakdown {
            corrosion: self.corrosion.incremental_damage_at(s, shared) * m,
            shedding: self.shedding.incremental_damage_at(s, shared) * m,
            sulphation: self.sulphation.incremental_damage_at(s, shared) * m,
            water_loss: self.water_loss.incremental_damage_at(s, shared) * m,
            stratification: self.stratification.incremental_damage_at(s, shared) * m,
        }
    }
}

/// Last-input/last-output pair for [`baat_units::Celsius::arrhenius_factor`].
///
/// Battery temperature settles to a bit-exact fixed point whenever the
/// load is steady (idle rests, float charge, the pre-aging loop), so
/// consecutive stress samples usually repeat the same temperature and the
/// `powf` is skipped. A hit returns the exact `f64` a fresh evaluation
/// would produce — the memo can never change a result, only its cost.
/// The initial pair is the reference temperature, whose factor is exactly
/// `1.0` by definition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArrheniusMemo {
    temp_bits: u64,
    factor: f64,
}

impl Default for ArrheniusMemo {
    fn default() -> Self {
        Self {
            temp_bits: baat_units::Celsius::REFERENCE.as_f64().to_bits(),
            factor: 1.0,
        }
    }
}

impl ArrheniusMemo {
    pub(crate) fn factor(&mut self, temperature: baat_units::Celsius) -> f64 {
        let bits = temperature.as_f64().to_bits();
        if bits != self.temp_bits {
            self.temp_bits = bits;
            self.factor = temperature.arrhenius_factor();
        }
        self.factor
    }
}

/// Accumulated aging state of one battery unit.
#[derive(Debug, Clone)]
pub struct AgingState {
    model: AgingModel,
    damage: DamageBreakdown,
    arrhenius: ArrheniusMemo,
}

/// Equality is semantic — model plus accumulated damage. The Arrhenius
/// memo is a pure evaluation cache and never distinguishes two states.
impl PartialEq for AgingState {
    fn eq(&self, other: &Self) -> bool {
        self.model == other.model && self.damage == other.damage
    }
}

impl AgingState {
    /// A brand-new battery with the given aging model.
    pub fn new(model: AgingModel) -> Self {
        Self {
            model,
            damage: DamageBreakdown::default(),
            arrhenius: ArrheniusMemo::default(),
        }
    }

    /// Integrates one step of stress.
    pub fn apply(&mut self, s: &StressSample) {
        let shared = SharedStress {
            arrhenius: self.arrhenius.factor(s.temperature),
            dt_hours: s.dt_hours(),
            c_rate: s.c_rate(),
        };
        let inc = self.model.incremental_damage_at(s, &shared);
        self.damage.corrosion += inc.corrosion;
        self.damage.shedding += inc.shedding;
        self.damage.sulphation += inc.sulphation;
        self.damage.water_loss += inc.water_loss;
        self.damage.stratification += inc.stratification;
    }

    /// Overrides the accumulated per-mechanism damage (checkpoint
    /// restore). The Arrhenius memo is untouched — it is an exact replay
    /// cache, so a restored unit starting cold replays bit-identically.
    pub fn restore_damage(&mut self, damage: DamageBreakdown) {
        self.damage = damage;
    }

    /// Total accumulated damage (1.0 = end-of-life).
    pub fn total_damage(&self) -> f64 {
        self.damage.total()
    }

    /// Per-mechanism damage breakdown.
    pub fn breakdown(&self) -> &DamageBreakdown {
        &self.damage
    }

    /// The aging model in use.
    pub fn model(&self) -> &AgingModel {
        &self.model
    }

    /// Remaining capacity as a fraction of initial capacity.
    ///
    /// Linear fade: 1.0 when new, 0.8 at damage 1.0 (end-of-life), floored
    /// at 0.5 — a battery far past EOL still holds some charge.
    pub fn capacity_fraction(&self) -> f64 {
        (1.0 - self.model.capacity_fade_per_damage * self.total_damage()).max(0.5)
    }

    /// Internal-resistance multiplier relative to the new battery.
    pub fn resistance_factor(&self) -> f64 {
        1.0 + self.model.resistance_growth_per_damage * self.total_damage()
    }

    /// Open-circuit-voltage multiplier relative to the new battery
    /// (≤ 1.0; drives the Fig 3 fully-charged voltage drop).
    pub fn ocv_factor(&self) -> f64 {
        (1.0 - self.model.ocv_sag_per_damage * self.total_damage()).max(0.7)
    }

    /// `true` once the battery can no longer deliver 80 % of its initial
    /// capacity — the paper's end-of-life criterion (\[30\]).
    pub fn is_end_of_life(&self) -> bool {
        self.total_damage() >= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::{AmpHours, Amperes, Celsius, SimDuration, Soc};

    fn model() -> AgingModel {
        AgingModel::new(17_500.0)
    }

    fn cycling_stress(soc: f64, amps: f64, dt_minutes: u64) -> StressSample {
        let dt = SimDuration::from_minutes(dt_minutes);
        let discharged = if amps > 0.0 {
            Amperes::new(amps) * dt
        } else {
            AmpHours::ZERO
        };
        StressSample {
            soc: Soc::new(soc).unwrap(),
            current: Amperes::new(amps),
            temperature: Celsius::new(25.0),
            dt,
            discharged,
            charged: AmpHours::ZERO,
            overcharge: AmpHours::ZERO,
            capacity: AmpHours::new(35.0),
            hours_since_full: 4.0,
        }
    }

    #[test]
    fn new_battery_has_no_damage() {
        let state = AgingState::new(model());
        assert_eq!(state.total_damage(), 0.0);
        assert_eq!(state.capacity_fraction(), 1.0);
        assert_eq!(state.resistance_factor(), 1.0);
        assert_eq!(state.ocv_factor(), 1.0);
        assert!(!state.is_end_of_life());
    }

    #[test]
    fn damage_accumulates_monotonically() {
        let mut state = AgingState::new(model());
        let mut prev = 0.0;
        for _ in 0..100 {
            state.apply(&cycling_stress(0.3, 10.0, 10));
            let d = state.total_damage();
            assert!(d > prev);
            prev = d;
        }
    }

    #[test]
    fn eol_at_unit_damage_is_eighty_percent_capacity() {
        let mut state = AgingState::new(model());
        // Force damage ≈ 1.0 through massive throughput.
        while state.total_damage() < 1.0 {
            state.apply(&cycling_stress(0.2, 30.0, 60));
        }
        assert!(state.is_end_of_life());
        assert!(state.capacity_fraction() <= 0.8 + 1e-6);
        assert!(state.capacity_fraction() > 0.7);
    }

    #[test]
    fn capacity_fraction_floored() {
        let mut state = AgingState::new(model());
        for _ in 0..100_000 {
            state.apply(&cycling_stress(0.1, 35.0, 60));
            if state.total_damage() > 5.0 {
                break;
            }
        }
        assert!(state.capacity_fraction() >= 0.5);
        assert!(state.ocv_factor() >= 0.7);
    }

    #[test]
    fn memoized_arrhenius_is_bit_identical_to_direct_formula() {
        // Repeated temperatures hit the memo, fresh ones miss; the
        // accumulated damage must match an integration that recomputes
        // the Arrhenius factor from scratch every step, bit for bit.
        let m = model();
        let mut memoized = AgingState::new(m.clone());
        let mut direct = DamageBreakdown::default();
        let temps = [25.0, 25.0, 31.7, 31.7, 31.7, 20.0, 42.3, 42.3, 25.0, 25.0];
        for (i, &t) in temps.iter().enumerate() {
            let mut s = cycling_stress(0.05 + 0.09 * i as f64, 10.0, 10);
            s.temperature = Celsius::new(t);
            memoized.apply(&s);
            let inc = m.incremental_damage(&s);
            direct.corrosion += inc.corrosion;
            direct.shedding += inc.shedding;
            direct.sulphation += inc.sulphation;
            direct.water_loss += inc.water_loss;
            direct.stratification += inc.stratification;
        }
        let got = memoized.breakdown();
        for ((name, g), (_, d)) in got.iter().zip(direct.iter()) {
            assert_eq!(g.to_bits(), d.to_bits(), "{name} drifted");
        }
    }

    #[test]
    fn rate_multiplier_scales_damage() {
        let fast = AgingModel::new(17_500.0).with_rate_multiplier(1.5);
        let slow = AgingModel::new(17_500.0);
        let s = cycling_stress(0.3, 10.0, 10);
        let df = fast.incremental_damage(&s).total();
        let ds = slow.incremental_damage(&s).total();
        assert!((df / ds - 1.5).abs() < 1e-9);
    }

    #[test]
    fn breakdown_iter_covers_all_mechanisms() {
        let mut state = AgingState::new(model());
        state.apply(&cycling_stress(0.2, 10.0, 10));
        let names: Vec<_> = state.breakdown().iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "corrosion",
                "shedding",
                "sulphation",
                "water_loss",
                "stratification"
            ]
        );
        let total: f64 = state.breakdown().iter().map(|(_, d)| d).sum();
        assert!((total - state.total_damage()).abs() < 1e-12);
    }

    #[test]
    fn timestep_invariance_of_time_driven_damage() {
        // Integrating 1 hour at 10-second steps ≈ one 1-hour step.
        let m = model();
        let coarse = {
            let mut st = AgingState::new(m.clone());
            st.apply(&cycling_stress(0.2, 2.0, 60));
            st.total_damage()
        };
        let fine = {
            let mut st = AgingState::new(m);
            for _ in 0..60 {
                st.apply(&cycling_stress(0.2, 2.0, 1));
            }
            st.total_damage()
        };
        assert!(
            ((coarse - fine) / coarse).abs() < 1e-9,
            "coarse {coarse} vs fine {fine}"
        );
    }
}
