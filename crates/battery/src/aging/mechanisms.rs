//! The five lead-acid aging mechanisms of paper §II.B.
//!
//! Each mechanism converts a [`StressSample`] into an incremental damage
//! contribution. Damage is normalized so that a *total* of 1.0 across all
//! mechanisms corresponds to end-of-life (80 % of initial capacity). The
//! stress factor each mechanism responds to follows the correlation matrix
//! of paper Fig 6:
//!
//! | Mechanism                | Accelerated by |
//! |--------------------------|----------------|
//! | Grid corrosion           | electrode polarization (float/overcharge), temperature |
//! | Active-mass shedding     | Ah throughput, low SoC, temperature, high C-rate |
//! | Irreversible sulphation  | time at low SoC, delayed recharge, temperature |
//! | Water loss (drying out)  | overcharge, temperature |
//! | Electrolyte stratification | rarely fully recharged, deep low-current discharge |

use crate::aging::stress::{SharedStress, StressSample};

/// A lead-acid aging mechanism: converts per-step stress into incremental
/// damage.
///
/// This trait is sealed in spirit — the five canonical implementations live
/// in this module — but is public so callers can inspect per-mechanism
/// contributions.
pub trait Mechanism {
    /// Short identifier for logs and reports.
    fn name(&self) -> &'static str;

    /// Incremental damage contributed by one step of stress.
    ///
    /// Must be non-negative and scale linearly with step duration for
    /// time-driven mechanisms (so results are timestep-invariant).
    fn incremental_damage(&self, s: &StressSample) -> f64 {
        self.incremental_damage_at(s, &SharedStress::of(s))
    }

    /// Like [`Mechanism::incremental_damage`], with the stress factors
    /// several mechanisms share supplied by the caller.
    ///
    /// The Arrhenius factor costs a `powf` and the hour/C-rate factors a
    /// divide each; the integrator derives them once per stress sample
    /// and passes the *same* `f64`s to every mechanism — an exact
    /// substitution that leaves results bit-identical. `shared` must
    /// equal `SharedStress::of(s)`; mechanisms read only the fields they
    /// are sensitive to.
    fn incremental_damage_at(&self, s: &StressSample, shared: &SharedStress) -> f64;
}

/// Grid corrosion (§II.B.1): the positive-electrode lead grid corrodes,
/// raising resistance and lowering the sustainable voltage. Driven by
/// electrode polarization (worst under float/overcharge at high SoC) and
/// temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCorrosion {
    /// Baseline damage per hour at 20 °C with no polarization stress.
    pub base_per_hour: f64,
    /// Extra multiplier at full polarization (float charge at ~100 % SoC).
    pub polarization_gain: f64,
}

impl Default for GridCorrosion {
    fn default() -> Self {
        // Calibrated to the paper's §VI.G service-life band (3–10 years):
        // a battery idling at partial charge corrodes out in ~10 years,
        // one float-charged continuously in ~5.
        Self {
            base_per_hour: 8.0e-6,
            polarization_gain: 1.0,
        }
    }
}

impl Mechanism for GridCorrosion {
    fn name(&self) -> &'static str {
        "corrosion"
    }

    fn incremental_damage_at(&self, s: &StressSample, shared: &SharedStress) -> f64 {
        // Polarization stress peaks when charging a nearly-full battery.
        let charging = s.current.as_f64() < 0.0;
        let high_soc = ((s.soc.value() - 0.9) / 0.1).max(0.0);
        let polarization = if charging { high_soc } else { 0.0 };
        self.base_per_hour
            * (1.0 + self.polarization_gain * polarization)
            * shared.arrhenius
            * shared.dt_hours
    }
}

/// Active-mass degradation and shedding (§II.B.2): positive/negative active
/// mass softens and detaches. Accelerated by high Ah throughput, very low
/// SoC and fast temperature changes; we additionally penalize high
/// discharge C-rates at low SoC per §III.E.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveMassShedding {
    /// Damage per unit of normalized Ah throughput (fraction of the
    /// battery's nominal life-long throughput) at SoC range A weight.
    pub per_normalized_ah: f64,
    /// Nominal life-long Ah throughput used for normalization.
    pub lifetime_throughput_ah: f64,
    /// C-rate above which the high-rate penalty engages.
    pub c_rate_knee: f64,
    /// Multiplier gain for discharge above the knee.
    pub c_rate_gain: f64,
    /// Extra multiplier when discharging hard below 40 % SoC.
    pub deep_rate_gain: f64,
}

impl ActiveMassShedding {
    /// Creates the shedding mechanism for a battery with the given nominal
    /// life-long throughput (Ah).
    pub fn for_lifetime_throughput(lifetime_throughput_ah: f64) -> Self {
        Self {
            per_normalized_ah: 0.5,
            lifetime_throughput_ah,
            c_rate_knee: 0.25,
            c_rate_gain: 0.8,
            deep_rate_gain: 1.0,
        }
    }
}

impl Mechanism for ActiveMassShedding {
    fn name(&self) -> &'static str {
        "shedding"
    }

    fn incremental_damage_at(&self, s: &StressSample, shared: &SharedStress) -> f64 {
        if s.discharged.as_f64() <= 0.0 {
            return 0.0;
        }
        // Eq-4 style SoC weighting: cycling at low SoC damages the plates
        // more (weights 1–4 across ranges A–D, normalized to range-B = 1).
        let soc_weight = s.soc.cycling_weight() / 2.0;
        // High-rate discharge penalty, compounded below 40 % SoC (§III.E).
        let over_knee = (shared.c_rate - self.c_rate_knee).max(0.0);
        let mut rate_factor = 1.0 + self.c_rate_gain * over_knee / (1.0 - self.c_rate_knee);
        if s.soc.is_deep_discharge() {
            rate_factor *= 1.0 + self.deep_rate_gain * over_knee.min(1.0);
        }
        let normalized_ah = s.discharged.as_f64() / self.lifetime_throughput_ah;
        self.per_normalized_ah * normalized_ah * soc_weight * rate_factor * shared.arrhenius
    }
}

/// Irreversible sulphation (§II.B.3): lead sulfate crystals grow while the
/// battery lingers at low SoC without timely recharge, permanently removing
/// active mass from the reaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sulphation {
    /// Damage per hour at 20 °C when fully below the deep-discharge knee.
    pub per_hour_at_zero_soc: f64,
    /// Additional growth factor per day since the last full recharge
    /// (crystals keep growing while recharge is delayed).
    pub recharge_delay_gain: f64,
}

impl Default for Sulphation {
    fn default() -> Self {
        Self {
            per_hour_at_zero_soc: 6.0e-4,
            recharge_delay_gain: 0.25,
        }
    }
}

impl Mechanism for Sulphation {
    fn name(&self) -> &'static str {
        "sulphation"
    }

    fn incremental_damage_at(&self, s: &StressSample, shared: &SharedStress) -> f64 {
        // Severity ramps from 0 at the 40 % SoC knee to 1 at 0 % SoC.
        let severity = ((0.40 - s.soc.value()) / 0.40).max(0.0);
        if severity == 0.0 {
            return 0.0;
        }
        let delay_factor = 1.0 + self.recharge_delay_gain * (s.hours_since_full / 24.0).min(4.0);
        self.per_hour_at_zero_soc * severity * delay_factor * shared.arrhenius * shared.dt_hours
    }
}

/// Water loss / drying out (§II.B.4): in a valve-regulated battery, gassing
/// during overcharge vents water that cannot be refilled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaterLoss {
    /// Damage per overcharge ampere-hour, normalized by capacity.
    pub per_normalized_overcharge_ah: f64,
}

impl Default for WaterLoss {
    fn default() -> Self {
        // A properly tapered charger gasses little; drying out dominates
        // only under sustained float at elevated temperature.
        Self {
            per_normalized_overcharge_ah: 0.004,
        }
    }
}

impl Mechanism for WaterLoss {
    fn name(&self) -> &'static str {
        "water_loss"
    }

    fn incremental_damage_at(&self, s: &StressSample, shared: &SharedStress) -> f64 {
        if s.overcharge.as_f64() <= 0.0 {
            return 0.0;
        }
        let normalized = s.overcharge.as_f64() / s.capacity.as_f64();
        self.per_normalized_overcharge_ah * normalized * shared.arrhenius
    }
}

/// Electrolyte stratification (§II.B.5): acid density separates vertically
/// in batteries that are rarely fully recharged, concentrating sulphation
/// at the bottom of the plates. Driven by time since last full recharge,
/// worst during deep low-current discharge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stratification {
    /// Damage per hour at maximum stratification stress.
    pub per_hour: f64,
    /// Days without a full recharge at which stress saturates.
    pub saturation_days: f64,
}

impl Default for Stratification {
    fn default() -> Self {
        Self {
            per_hour: 8.0e-5,
            saturation_days: 4.0,
        }
    }
}

impl Mechanism for Stratification {
    fn name(&self) -> &'static str {
        "stratification"
    }

    // Stratification is the one temperature-insensitive mechanism: the
    // shared Arrhenius factor is ignored.
    fn incremental_damage_at(&self, s: &StressSample, shared: &SharedStress) -> f64 {
        let staleness = (s.hours_since_full / (24.0 * self.saturation_days)).min(1.0);
        if staleness == 0.0 {
            return 0.0;
        }
        // Deep, gentle discharge stratifies hardest ([28]).
        let discharging = s.current.as_f64() > 0.0;
        let gentle = discharging && shared.c_rate < 0.1;
        let depth = 1.0 - s.soc.value();
        let stress = staleness * (0.5 + 0.5 * depth) * if gentle { 1.5 } else { 1.0 };
        self.per_hour * stress * shared.dt_hours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::{AmpHours, Amperes, Celsius, SimDuration, Soc};

    fn sample(soc: f64) -> StressSample {
        StressSample::idle(
            Soc::new(soc).unwrap(),
            Celsius::new(25.0),
            SimDuration::from_minutes(1),
            AmpHours::new(35.0),
        )
    }

    #[test]
    fn corrosion_worst_under_float_charge_at_full() {
        let m = GridCorrosion::default();
        let idle = m.incremental_damage(&sample(1.0));
        let mut float = sample(1.0);
        float.current = Amperes::new(-0.5);
        let floating = m.incremental_damage(&float);
        assert!(floating > idle);
    }

    #[test]
    fn corrosion_scales_with_temperature() {
        let m = GridCorrosion::default();
        let mut hot = sample(0.5);
        hot.temperature = Celsius::new(35.0);
        assert!(m.incremental_damage(&hot) > m.incremental_damage(&sample(0.5)));
    }

    #[test]
    fn shedding_zero_without_discharge() {
        let m = ActiveMassShedding::for_lifetime_throughput(17_500.0);
        assert_eq!(m.incremental_damage(&sample(0.5)), 0.0);
    }

    #[test]
    fn shedding_worse_at_low_soc() {
        let m = ActiveMassShedding::for_lifetime_throughput(17_500.0);
        let mut high = sample(0.9);
        high.discharged = AmpHours::new(1.0);
        high.current = Amperes::new(5.0);
        let mut low = high;
        low.soc = Soc::new(0.2).unwrap();
        assert!(m.incremental_damage(&low) > m.incremental_damage(&high));
    }

    #[test]
    fn shedding_high_rate_penalty_compounds_when_deep() {
        let m = ActiveMassShedding::for_lifetime_throughput(17_500.0);
        let mut gentle = sample(0.3);
        gentle.discharged = AmpHours::new(1.0);
        gentle.current = Amperes::new(3.5); // 0.1C
        let mut hard = gentle;
        hard.current = Amperes::new(28.0); // 0.8C
        assert!(m.incremental_damage(&hard) > 1.5 * m.incremental_damage(&gentle));
    }

    #[test]
    fn shedding_full_lifetime_throughput_at_range_b_is_unit_damage() {
        let m = ActiveMassShedding::for_lifetime_throughput(17_500.0);
        let mut s = sample(0.7); // range B, weight 1 after normalization
        s.temperature = Celsius::new(20.0); // Arrhenius baseline
        s.discharged = AmpHours::new(17_500.0);
        s.current = Amperes::new(3.5);
        let d = m.incremental_damage(&s);
        // per_normalized_ah = 0.5 sets the calibrated scale.
        assert!((d - 0.5).abs() < 0.05, "expected ~0.5, got {d}");
    }

    #[test]
    fn sulphation_only_below_forty_percent() {
        let m = Sulphation::default();
        assert_eq!(m.incremental_damage(&sample(0.5)), 0.0);
        assert_eq!(m.incremental_damage(&sample(0.40)), 0.0);
        assert!(m.incremental_damage(&sample(0.2)) > 0.0);
    }

    #[test]
    fn sulphation_grows_with_recharge_delay() {
        let m = Sulphation::default();
        let fresh = sample(0.1);
        let mut stale = fresh;
        stale.hours_since_full = 72.0;
        assert!(m.incremental_damage(&stale) > m.incremental_damage(&fresh));
    }

    #[test]
    fn sulphation_linear_in_dt() {
        let m = Sulphation::default();
        let one = sample(0.1);
        let mut two = one;
        two.dt = SimDuration::from_minutes(2);
        let d1 = m.incremental_damage(&one);
        let d2 = m.incremental_damage(&two);
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
    }

    #[test]
    fn water_loss_requires_overcharge() {
        let m = WaterLoss::default();
        assert_eq!(m.incremental_damage(&sample(1.0)), 0.0);
        let mut over = sample(1.0);
        over.overcharge = AmpHours::new(0.5);
        assert!(m.incremental_damage(&over) > 0.0);
    }

    #[test]
    fn stratification_requires_staleness() {
        let m = Stratification::default();
        assert_eq!(m.incremental_damage(&sample(0.5)), 0.0);
        let mut stale = sample(0.5);
        stale.hours_since_full = 48.0;
        assert!(m.incremental_damage(&stale) > 0.0);
    }

    #[test]
    fn stratification_worst_for_gentle_deep_discharge() {
        let m = Stratification::default();
        let mut gentle = sample(0.2);
        gentle.hours_since_full = 48.0;
        gentle.current = Amperes::new(1.0); // < 0.1C
        let mut brisk = gentle;
        brisk.current = Amperes::new(10.0);
        assert!(m.incremental_damage(&gentle) > m.incremental_damage(&brisk));
    }
}
