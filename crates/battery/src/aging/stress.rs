//! The per-step stress snapshot consumed by the aging mechanisms.

use baat_units::{AmpHours, Amperes, Celsius, SimDuration, Soc};

/// Operating-condition snapshot for one simulation step.
///
/// This is the "operating conditions (different voltage, current and
/// temperature)" input of paper §III: every aging mechanism reads the
/// stress factors Fig 6 correlates it with from this snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressSample {
    /// State of charge at the end of the step.
    pub soc: Soc,
    /// Battery current during the step (positive = discharge).
    pub current: Amperes,
    /// Battery surface temperature during the step.
    pub temperature: Celsius,
    /// Step length.
    pub dt: SimDuration,
    /// Charge removed from the battery this step (non-negative).
    pub discharged: AmpHours,
    /// Charge accepted by the battery this step (non-negative).
    pub charged: AmpHours,
    /// Charge pushed in while the battery was already nearly full
    /// (gassing/overcharge region, non-negative).
    pub overcharge: AmpHours,
    /// Nominal capacity, for normalising currents and charges.
    pub capacity: AmpHours,
    /// Hours elapsed since the battery last reached full charge.
    pub hours_since_full: f64,
}

/// Stress factors several mechanisms read from the same sample, computed
/// once per integration step instead of once per mechanism.
///
/// Each field must equal the corresponding [`StressSample`] method applied
/// to the sample it was derived from. Handing every mechanism the same
/// `f64` — whether freshly divided or replayed from a memo — is an exact
/// substitution: results stay bit-identical, only the number of divides
/// and `powf`s changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedStress {
    /// [`StressSample::arrhenius`] — the `powf` four mechanisms share.
    pub arrhenius: f64,
    /// [`StressSample::dt_hours`].
    pub dt_hours: f64,
    /// [`StressSample::c_rate`].
    pub c_rate: f64,
}

impl SharedStress {
    /// Derives the shared factors directly from the sample.
    pub fn of(s: &StressSample) -> Self {
        Self {
            arrhenius: s.arrhenius(),
            dt_hours: s.dt_hours(),
            c_rate: s.c_rate(),
        }
    }
}

impl StressSample {
    /// An idle (zero-current) stress sample, useful as a baseline.
    pub fn idle(soc: Soc, temperature: Celsius, dt: SimDuration, capacity: AmpHours) -> Self {
        Self {
            soc,
            current: Amperes::ZERO,
            temperature,
            dt,
            discharged: AmpHours::ZERO,
            charged: AmpHours::ZERO,
            overcharge: AmpHours::ZERO,
            capacity,
            hours_since_full: 0.0,
        }
    }

    /// The C-rate of the step: `|I| / capacity` in units of 1/h.
    pub fn c_rate(&self) -> f64 {
        self.current.abs().as_f64() / self.capacity.as_f64()
    }

    /// Step duration in hours.
    pub fn dt_hours(&self) -> f64 {
        self.dt.as_hours()
    }

    /// Temperature acceleration factor (doubles every 10 °C above 20 °C).
    pub fn arrhenius(&self) -> f64 {
        self.temperature.arrhenius_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_rate_is_current_over_capacity() {
        let mut s = StressSample::idle(
            Soc::new(0.5).unwrap(),
            Celsius::new(25.0),
            SimDuration::from_secs(10),
            AmpHours::new(35.0),
        );
        s.current = Amperes::new(17.5);
        assert!((s.c_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_sample_has_no_charge_motion() {
        let s = StressSample::idle(
            Soc::FULL,
            Celsius::new(20.0),
            SimDuration::from_minutes(1),
            AmpHours::new(35.0),
        );
        assert_eq!(s.discharged, AmpHours::ZERO);
        assert_eq!(s.charged, AmpHours::ZERO);
        assert_eq!(s.overcharge, AmpHours::ZERO);
        assert!((s.arrhenius() - 1.0).abs() < 1e-12);
    }
}
