//! Observability hooks for the aging model.
//!
//! The paper's display module tracks "various aging metrics" live; the
//! reproduction mirrors that with one gauge per aging mechanism plus the
//! total, updated from an [`AgingBreakdown`] whenever the owner samples
//! its batteries. Gauge names come from the chemistry
//! ([`Chemistry::aging_labels`]), so a lead-acid fleet registers the five
//! §II.B mechanisms and a Li-ion fleet registers `calendar`/`cycle`.
//! Gauges are fleet aggregates: callers sum breakdowns across units
//! before recording.

use baat_obs::{Gauge, Obs};

use crate::chemistry::{AgingBreakdown, Chemistry, MAX_AGING_MECHANISMS};

/// Gauges tracking accumulated damage per aging mechanism.
#[derive(Debug, Clone, Default)]
pub struct AgingObs {
    mechanisms: [Gauge; MAX_AGING_MECHANISMS],
    len: usize,
    total: Gauge,
}

impl AgingObs {
    /// Registers one `battery.aging.<mechanism>` gauge per mechanism of
    /// `chemistry`, plus `battery.aging.total`. With a disabled `Obs`
    /// every gauge is inert.
    pub fn new(obs: &Obs, chemistry: Chemistry) -> Self {
        let names = chemistry.aging_gauge_names();
        let mut mechanisms: [Gauge; MAX_AGING_MECHANISMS] = Default::default();
        for (slot, name) in mechanisms.iter_mut().zip(names) {
            *slot = obs.gauge(name);
        }
        Self {
            mechanisms,
            len: names.len(),
            total: obs.gauge("battery.aging.total"),
        }
    }

    /// A permanently inert instance.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Records the current damage breakdown into the gauges, by
    /// position. The breakdown must come from the same chemistry the
    /// gauges were registered for (or be empty/default).
    pub fn record(&self, breakdown: &AgingBreakdown) {
        for (gauge, (_, value)) in self.mechanisms[..self.len].iter().zip(breakdown.iter()) {
            gauge.set(value);
        }
        self.total.set(breakdown.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lead_acid_gauges_reflect_the_breakdown() {
        let obs = Obs::enabled();
        let aging = AgingObs::new(&obs, Chemistry::LeadAcid);
        let breakdown = AgingBreakdown::from_pairs(&[
            ("corrosion", 0.1),
            ("shedding", 0.2),
            ("sulphation", 0.3),
            ("water_loss", 0.05),
            ("stratification", 0.05),
        ]);
        aging.record(&breakdown);
        let jsonl = obs.metrics_jsonl();
        assert!(jsonl.contains(r#""name":"battery.aging.sulphation","value":0.3"#));
        assert!(jsonl.contains(r#""name":"battery.aging.total","value":0.7"#));
    }

    #[test]
    fn li_ion_gauges_use_calendar_and_cycle_names() {
        let obs = Obs::enabled();
        let aging = AgingObs::new(&obs, Chemistry::LiIon);
        aging.record(&AgingBreakdown::from_pairs(&[
            ("calendar", 0.12),
            ("cycle", 0.08),
        ]));
        let jsonl = obs.metrics_jsonl();
        assert!(jsonl.contains(r#""name":"battery.aging.calendar","value":0.12"#));
        assert!(jsonl.contains(r#""name":"battery.aging.cycle","value":0.08"#));
        assert!(!jsonl.contains("battery.aging.corrosion"));
    }

    #[test]
    fn disabled_instance_is_inert() {
        let aging = AgingObs::disabled();
        aging.record(&AgingBreakdown::default());
    }
}
