//! Observability hooks for the aging model.
//!
//! The paper's display module tracks "various aging metrics" live; the
//! reproduction mirrors that with one gauge per §II.B mechanism plus the
//! total, updated from a [`DamageBreakdown`] whenever the owner samples
//! its batteries. Gauges are fleet aggregates: callers sum breakdowns
//! across units before recording.

use baat_obs::{Gauge, Obs};

use crate::aging::DamageBreakdown;

/// Gauges tracking accumulated damage per aging mechanism.
#[derive(Debug, Clone, Default)]
pub struct AgingObs {
    corrosion: Gauge,
    shedding: Gauge,
    sulphation: Gauge,
    water_loss: Gauge,
    stratification: Gauge,
    total: Gauge,
}

impl AgingObs {
    /// Registers the aging gauges under `battery.aging.*`. With a
    /// disabled `Obs` every gauge is inert.
    pub fn new(obs: &Obs) -> Self {
        Self {
            corrosion: obs.gauge("battery.aging.corrosion"),
            shedding: obs.gauge("battery.aging.shedding"),
            sulphation: obs.gauge("battery.aging.sulphation"),
            water_loss: obs.gauge("battery.aging.water_loss"),
            stratification: obs.gauge("battery.aging.stratification"),
            total: obs.gauge("battery.aging.total"),
        }
    }

    /// A permanently inert instance.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Records the current damage breakdown into the gauges.
    pub fn record(&self, breakdown: &DamageBreakdown) {
        self.corrosion.set(breakdown.corrosion);
        self.shedding.set(breakdown.shedding);
        self.sulphation.set(breakdown.sulphation);
        self.water_loss.set(breakdown.water_loss);
        self.stratification.set(breakdown.stratification);
        self.total.set(breakdown.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_reflect_the_breakdown() {
        let obs = Obs::enabled();
        let aging = AgingObs::new(&obs);
        let breakdown = DamageBreakdown {
            corrosion: 0.1,
            shedding: 0.2,
            sulphation: 0.3,
            water_loss: 0.05,
            stratification: 0.05,
        };
        aging.record(&breakdown);
        let jsonl = obs.metrics_jsonl();
        assert!(jsonl.contains(r#""name":"battery.aging.sulphation","value":0.3"#));
        assert!(jsonl.contains(r#""name":"battery.aging.total","value":0.7"#));
    }

    #[test]
    fn disabled_instance_is_inert() {
        let aging = AgingObs::disabled();
        aging.record(&DamageBreakdown::default());
    }
}
