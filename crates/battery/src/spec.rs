//! Battery specification and builder.

use baat_units::{AmpHours, Amperes, Celsius, Fraction, Ohms, Volts};

use crate::chemistry::Chemistry;
use crate::cycle_life::Manufacturer;
use crate::error::BatteryError;

/// Static parameters of one battery unit, for any [`Chemistry`].
///
/// The defaults model the paper's prototype hardware: twelve 12 V 35 Ah
/// sealed (VRLA) lead-acid batteries (§V.A). Use
/// [`BatterySpec::li_ion_prototype`] for the Li-ion equivalent.
///
/// Construct with [`BatterySpec::builder`]:
///
/// ```
/// # fn main() -> Result<(), baat_battery::BatteryError> {
/// use baat_battery::BatterySpec;
/// use baat_units::AmpHours;
///
/// let spec = BatterySpec::builder()
///     .capacity(AmpHours::new(35.0))
///     .build()?;
/// assert_eq!(spec.capacity(), AmpHours::new(35.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatterySpec {
    chemistry: Chemistry,
    nominal_voltage: Volts,
    capacity: AmpHours,
    internal_resistance: Ohms,
    cutoff_voltage: Volts,
    max_charge_current: Amperes,
    max_discharge_current: Amperes,
    lifetime_throughput: AmpHours,
    manufacturer: Manufacturer,
    coulombic_efficiency: Fraction,
    self_discharge_per_day: Fraction,
    thermal_resistance: f64,
    thermal_time_constant_s: f64,
    ambient: Celsius,
}

impl BatterySpec {
    /// Starts building a specification from the prototype defaults.
    pub fn builder() -> BatterySpecBuilder {
        BatterySpecBuilder::default()
    }

    /// The paper's prototype battery: 12 V, 35 Ah sealed lead-acid.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_battery::BatterySpec;
    ///
    /// let spec = BatterySpec::prototype();
    /// assert_eq!(spec.nominal_voltage().as_f64(), 12.0);
    /// ```
    pub fn prototype() -> Self {
        BatterySpecBuilder::default()
            .build()
            .expect("prototype defaults are valid")
    }

    /// An LFP-flavoured Li-ion drop-in for the prototype bay: a 4s pack
    /// at 12.8 V nominal with the same 35 Ah capacity, but lower
    /// resistance, faster charging, near-unity coulombic efficiency and
    /// a ~2000 full-cycle life.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_battery::{BatterySpec, Chemistry};
    ///
    /// let spec = BatterySpec::li_ion_prototype();
    /// assert_eq!(spec.chemistry(), Chemistry::LiIon);
    /// assert!(spec.lifetime_throughput() > BatterySpec::prototype().lifetime_throughput());
    /// ```
    pub fn li_ion_prototype() -> Self {
        BatterySpec::builder()
            .chemistry(Chemistry::LiIon)
            .nominal_voltage(Volts::new(12.8))
            .capacity(AmpHours::new(35.0))
            .internal_resistance(Ohms::new(0.008))
            .cutoff_voltage(Volts::new(10.0))
            .max_charge_current(Amperes::new(17.5)) // C/2
            .max_discharge_current(Amperes::new(70.0)) // 2C
            // ~2000 full-equivalent cycles, set after capacity() so the
            // lead-acid 500-cycle auto-scaling does not overwrite it.
            .lifetime_throughput(AmpHours::new(35.0 * 2_000.0))
            .coulombic_efficiency(Fraction::saturating(0.99))
            .self_discharge_per_day(Fraction::saturating(0.000_3))
            .build()
            .expect("li-ion prototype defaults are valid")
    }

    /// The electrochemistry this unit implements.
    pub fn chemistry(&self) -> Chemistry {
        self.chemistry
    }

    /// Nominal terminal voltage (12 V for the prototype units).
    pub fn nominal_voltage(&self) -> Volts {
        self.nominal_voltage
    }

    /// Nominal capacity at the rated discharge current.
    pub fn capacity(&self) -> AmpHours {
        self.capacity
    }

    /// Internal series resistance when new.
    pub fn internal_resistance(&self) -> Ohms {
        self.internal_resistance
    }

    /// Terminal voltage below which the battery must be disconnected
    /// (under-voltage cutoff, paper §II.B cites \[29\]).
    pub fn cutoff_voltage(&self) -> Volts {
        self.cutoff_voltage
    }

    /// Maximum safe charging current.
    pub fn max_charge_current(&self) -> Amperes {
        self.max_charge_current
    }

    /// Maximum safe discharging current.
    pub fn max_discharge_current(&self) -> Amperes {
        self.max_discharge_current
    }

    /// Nominal life-long Ah output `CAP_nom` in the paper's Eq 1: the
    /// aggregate charge that can be cycled before wear-out ([31, 32]).
    pub fn lifetime_throughput(&self) -> AmpHours {
        self.lifetime_throughput
    }

    /// The manufacturer whose cycle-life curve (Fig 10) applies.
    pub fn manufacturer(&self) -> Manufacturer {
        self.manufacturer
    }

    /// Coulombic (charge) efficiency in `(0, 1]`.
    pub fn coulombic_efficiency(&self) -> Fraction {
        self.coulombic_efficiency
    }

    /// Fraction of stored charge lost per idle day.
    pub fn self_discharge_per_day(&self) -> Fraction {
        self.self_discharge_per_day
    }

    /// Steady-state temperature rise per watt of internal dissipation
    /// (K/W).
    pub fn thermal_resistance(&self) -> f64 {
        self.thermal_resistance
    }

    /// First-order thermal time constant in seconds.
    pub fn thermal_time_constant_s(&self) -> f64 {
        self.thermal_time_constant_s
    }

    /// Design ambient temperature.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }
}

impl Default for BatterySpec {
    fn default() -> Self {
        Self::prototype()
    }
}

/// Builder for [`BatterySpec`].
#[derive(Debug, Clone)]
pub struct BatterySpecBuilder {
    spec: BatterySpec,
    lifetime_throughput_set: bool,
}

impl Default for BatterySpecBuilder {
    fn default() -> Self {
        // 12 V 35 Ah VRLA defaults. Lifetime throughput follows the
        // constant-Ah rule of thumb (Bindner et al. [32]): roughly the
        // nominal capacity cycled once a day for ~500 full-equivalent
        // cycles.
        Self {
            spec: BatterySpec {
                chemistry: Chemistry::LeadAcid,
                nominal_voltage: Volts::new(12.0),
                capacity: AmpHours::new(35.0),
                internal_resistance: Ohms::new(0.012),
                cutoff_voltage: Volts::new(10.5),
                max_charge_current: Amperes::new(8.75), // C/4
                max_discharge_current: Amperes::new(35.0), // 1C
                lifetime_throughput: AmpHours::new(35.0 * 500.0),
                manufacturer: Manufacturer::Trojan,
                coulombic_efficiency: Fraction::saturating(0.90),
                self_discharge_per_day: Fraction::saturating(0.001),
                thermal_resistance: 0.6,
                thermal_time_constant_s: 3_600.0,
                ambient: Celsius::new(25.0),
            },
            lifetime_throughput_set: false,
        }
    }
}

impl BatterySpecBuilder {
    /// Sets the electrochemistry. The dynamic model (lead-acid or
    /// Li-ion) is chosen from this when the unit is constructed.
    pub fn chemistry(&mut self, c: Chemistry) -> &mut Self {
        self.spec.chemistry = c;
        self
    }

    /// Sets the nominal voltage.
    pub fn nominal_voltage(&mut self, v: Volts) -> &mut Self {
        self.spec.nominal_voltage = v;
        self
    }

    /// Sets the nominal capacity. Unless overridden, the lifetime
    /// throughput scales with it (500 full-equivalent cycles).
    pub fn capacity(&mut self, c: AmpHours) -> &mut Self {
        self.spec.capacity = c;
        if !self.lifetime_throughput_set {
            self.spec.lifetime_throughput = AmpHours::new(c.as_f64() * 500.0);
        }
        self
    }

    /// Sets the internal series resistance.
    pub fn internal_resistance(&mut self, r: Ohms) -> &mut Self {
        self.spec.internal_resistance = r;
        self
    }

    /// Sets the under-voltage cutoff.
    pub fn cutoff_voltage(&mut self, v: Volts) -> &mut Self {
        self.spec.cutoff_voltage = v;
        self
    }

    /// Sets the maximum charging current.
    pub fn max_charge_current(&mut self, i: Amperes) -> &mut Self {
        self.spec.max_charge_current = i;
        self
    }

    /// Sets the maximum discharging current.
    pub fn max_discharge_current(&mut self, i: Amperes) -> &mut Self {
        self.spec.max_discharge_current = i;
        self
    }

    /// Sets `CAP_nom`, the nominal life-long Ah throughput.
    pub fn lifetime_throughput(&mut self, q: AmpHours) -> &mut Self {
        self.spec.lifetime_throughput = q;
        self.lifetime_throughput_set = true;
        self
    }

    /// Sets the manufacturer cycle-life curve.
    pub fn manufacturer(&mut self, m: Manufacturer) -> &mut Self {
        self.spec.manufacturer = m;
        self
    }

    /// Sets the coulombic efficiency. The [`Fraction`] newtype already
    /// bounds it to `[0, 1]`; [`build`](Self::build) rejects zero.
    pub fn coulombic_efficiency(&mut self, eff: Fraction) -> &mut Self {
        self.spec.coulombic_efficiency = eff;
        self
    }

    /// Sets the idle self-discharge rate per day (must stay below 10 %).
    pub fn self_discharge_per_day(&mut self, rate: Fraction) -> &mut Self {
        self.spec.self_discharge_per_day = rate;
        self
    }

    /// Sets the design ambient temperature.
    pub fn ambient(&mut self, t: Celsius) -> &mut Self {
        self.spec.ambient = t;
        self
    }

    /// Validates the parameters and produces the specification.
    ///
    /// # Errors
    ///
    /// Returns [`BatteryError::InvalidSpec`] if any parameter is
    /// non-positive, non-finite, or inconsistent (e.g. cutoff voltage at or
    /// above nominal voltage).
    pub fn build(&self) -> Result<BatterySpec, BatteryError> {
        let s = &self.spec;
        let positive = [
            ("nominal_voltage", s.nominal_voltage.as_f64()),
            ("capacity", s.capacity.as_f64()),
            ("internal_resistance", s.internal_resistance.as_f64()),
            ("cutoff_voltage", s.cutoff_voltage.as_f64()),
            ("max_charge_current", s.max_charge_current.as_f64()),
            ("max_discharge_current", s.max_discharge_current.as_f64()),
            ("lifetime_throughput", s.lifetime_throughput.as_f64()),
            ("thermal_resistance", s.thermal_resistance),
            ("thermal_time_constant_s", s.thermal_time_constant_s),
        ];
        for (field, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(BatteryError::InvalidSpec {
                    field,
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }
        if s.cutoff_voltage >= s.nominal_voltage {
            return Err(BatteryError::InvalidSpec {
                field: "cutoff_voltage",
                reason: format!(
                    "cutoff {} must be below nominal {}",
                    s.cutoff_voltage, s.nominal_voltage
                ),
            });
        }
        if s.coulombic_efficiency.value() <= 0.0 {
            return Err(BatteryError::InvalidSpec {
                field: "coulombic_efficiency",
                reason: format!("must be in (0, 1], got {}", s.coulombic_efficiency.value()),
            });
        }
        if s.self_discharge_per_day.value() >= 0.1 {
            return Err(BatteryError::InvalidSpec {
                field: "self_discharge_per_day",
                reason: format!(
                    "must be in [0, 0.1), got {}",
                    s.self_discharge_per_day.value()
                ),
            });
        }
        Ok(s.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_hardware() {
        let spec = BatterySpec::prototype();
        assert_eq!(spec.nominal_voltage(), Volts::new(12.0));
        assert_eq!(spec.capacity(), AmpHours::new(35.0));
        assert!(spec.cutoff_voltage() < spec.nominal_voltage());
    }

    #[test]
    fn capacity_scales_default_lifetime_throughput() {
        let spec = BatterySpec::builder()
            .capacity(AmpHours::new(70.0))
            .build()
            .unwrap();
        assert_eq!(spec.lifetime_throughput(), AmpHours::new(35_000.0));
    }

    #[test]
    fn explicit_lifetime_throughput_survives_capacity_change() {
        let spec = BatterySpec::builder()
            .lifetime_throughput(AmpHours::new(9_999.0))
            .capacity(AmpHours::new(70.0))
            .build()
            .unwrap();
        assert_eq!(spec.lifetime_throughput(), AmpHours::new(9_999.0));
    }

    #[test]
    fn rejects_nonpositive_capacity() {
        let err = BatterySpec::builder()
            .capacity(AmpHours::new(0.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, BatteryError::InvalidSpec { field, .. } if field == "capacity"));
    }

    #[test]
    fn rejects_cutoff_above_nominal() {
        let err = BatterySpec::builder()
            .cutoff_voltage(Volts::new(13.0))
            .build()
            .unwrap_err();
        assert!(
            matches!(err, BatteryError::InvalidSpec { field, .. } if field == "cutoff_voltage")
        );
    }

    #[test]
    fn rejects_bad_efficiency() {
        // Out-of-range values can no longer be expressed: the Fraction
        // newtype rejects them at construction...
        assert!(Fraction::new(1.2).is_err());
        // ...and the builder still rejects the in-range-but-useless zero.
        assert!(BatterySpec::builder()
            .coulombic_efficiency(Fraction::ZERO)
            .build()
            .is_err());
    }

    #[test]
    fn li_ion_prototype_is_valid_and_distinct() {
        let li = BatterySpec::li_ion_prototype();
        let pb = BatterySpec::prototype();
        assert_eq!(li.chemistry(), Chemistry::LiIon);
        assert_eq!(pb.chemistry(), Chemistry::LeadAcid);
        assert_ne!(li, pb);
        assert!(li.coulombic_efficiency().value() > pb.coulombic_efficiency().value());
        assert!(li.cutoff_voltage() < li.nominal_voltage());
    }
}
