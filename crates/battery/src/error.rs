//! Error types for battery construction and operation.

/// Errors returned by battery constructors and operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BatteryError {
    /// A specification parameter was invalid.
    InvalidSpec {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// An operation referenced a battery index that does not exist.
    UnknownBattery {
        /// The requested index.
        index: usize,
        /// The number of batteries in the pack.
        len: usize,
    },
    /// A charge or discharge request carried a non-finite power.
    ///
    /// Extreme fault injection can drive routed power to `NaN`/`±∞`;
    /// feeding that into the quadratic current solvers would poison SoC
    /// and aging with `NaN`, so the step rejects it up front.
    NonFinitePower {
        /// The offending power request, in watts.
        requested_w: f64,
    },
}

impl core::fmt::Display for BatteryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BatteryError::InvalidSpec { field, reason } => {
                write!(f, "invalid battery spec field `{field}`: {reason}")
            }
            BatteryError::UnknownBattery { index, len } => {
                write!(f, "battery index {index} out of range for pack of {len}")
            }
            BatteryError::NonFinitePower { requested_w } => {
                write!(f, "power request must be finite, got {requested_w} W")
            }
        }
    }
}

impl std::error::Error for BatteryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let err = BatteryError::InvalidSpec {
            field: "capacity",
            reason: "must be positive".to_owned(),
        };
        assert!(err.to_string().contains("capacity"));
    }
}
