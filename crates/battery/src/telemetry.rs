//! Battery telemetry: the sensor data of paper Table 2 and the usage
//! aggregates the five aging metrics are computed from.

use std::collections::VecDeque;

use baat_units::{AmpHours, Amperes, Celsius, SimDuration, SimInstant, Soc, Volts, WattHours};

/// One reading from the battery's front-end sensor (paper Table 2:
/// current, voltage, temperature, time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSample {
    /// Sample timestamp.
    pub at: SimInstant,
    /// Terminal voltage.
    pub voltage: Volts,
    /// Battery current (positive = discharge).
    pub current: Amperes,
    /// Battery surface temperature.
    pub temperature: Celsius,
    /// State of charge at sample time.
    pub soc: Soc,
}

/// Number of SoC histogram bins used by paper Fig 19
/// (`[0,15) [15,30) [30,45) [45,60) [60,75) [75,90) [90,100]`).
pub const SOC_HISTOGRAM_BINS: usize = 7;

/// Usage counters over an observation window — the integrals in the
/// paper's Eqs 1–5.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UsageAccumulator {
    /// Cumulative discharged charge `∫ I_discharge dt`.
    pub ah_discharged: AmpHours,
    /// Cumulative charging charge `∫ I_charge dt`.
    pub ah_charged: AmpHours,
    /// Discharged charge per SoC range A–D (Eq 3 numerators).
    pub ah_discharged_by_range: [AmpHours; 4],
    /// Total observed time `∫ dt`.
    pub observed: SimDuration,
    /// Time spent below 40 % SoC (Eq 5 numerator).
    pub deep_discharge_time: SimDuration,
    /// Time-weighted SoC histogram over the 7 Fig-19 bins.
    pub soc_time_histogram: [SimDuration; SOC_HISTOGRAM_BINS],
    /// Largest discharge current observed.
    pub peak_discharge: Amperes,
    /// Discharge-current · time integral (for mean discharge rate).
    pub discharge_amp_seconds: f64,
    /// Time spent discharging.
    pub discharge_time: SimDuration,
    /// Energy delivered at the terminals.
    pub energy_out: WattHours,
    /// Energy absorbed at the terminals.
    pub energy_in: WattHours,
    /// Number of times the battery reached full charge.
    pub full_charge_events: u64,
}

impl UsageAccumulator {
    /// Folds one step of battery activity into the counters.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        soc: Soc,
        current: Amperes,
        discharged: AmpHours,
        charged: AmpHours,
        energy_out: WattHours,
        energy_in: WattHours,
        dt: SimDuration,
    ) {
        self.ah_discharged += discharged;
        self.ah_charged += charged;
        self.ah_discharged_by_range[soc.cycling_range() as usize] += discharged;
        self.observed += dt;
        if soc.is_deep_discharge() {
            self.deep_discharge_time += dt;
        }
        let bin = Self::soc_bin(soc);
        self.soc_time_histogram[bin] += dt;
        if current.as_f64() > 0.0 {
            self.peak_discharge = self.peak_discharge.max(current);
            self.discharge_amp_seconds += current.as_f64() * dt.as_secs() as f64;
            self.discharge_time += dt;
        }
        self.energy_out += energy_out;
        self.energy_in += energy_in;
    }

    /// The Fig-19 histogram bin for a SoC value.
    pub fn soc_bin(soc: Soc) -> usize {
        let pct = soc.as_percent();
        if pct >= 90.0 {
            6
        } else {
            (pct / 15.0) as usize
        }
    }

    /// Mean discharge current while discharging, or zero if the battery
    /// never discharged.
    pub fn mean_discharge_current(&self) -> Amperes {
        if self.discharge_time.is_zero() {
            return Amperes::ZERO;
        }
        Amperes::new(self.discharge_amp_seconds / self.discharge_time.as_secs() as f64)
    }

    /// Round-trip energy efficiency `E_out / E_in` over the window, or
    /// `None` if no energy was absorbed.
    pub fn round_trip_efficiency(&self) -> Option<f64> {
        if self.energy_in.as_f64() <= 0.0 {
            return None;
        }
        Some(self.energy_out.as_f64() / self.energy_in.as_f64())
    }

    /// Fraction of observed time spent below 40 % SoC (Eq 5), in `[0, 1]`.
    pub fn deep_discharge_fraction(&self) -> f64 {
        if self.observed.is_zero() {
            return 0.0;
        }
        self.deep_discharge_time.as_secs() as f64 / self.observed.as_secs() as f64
    }
}

/// Telemetry store for one battery: recent raw sensor samples plus
/// lifetime and resettable-window usage accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryLog {
    samples: VecDeque<SensorSample>,
    max_samples: usize,
    lifetime: UsageAccumulator,
    window: UsageAccumulator,
}

impl TelemetryLog {
    /// Creates a log retaining at most `max_samples` raw sensor readings.
    pub fn new(max_samples: usize) -> Self {
        Self {
            samples: VecDeque::with_capacity(max_samples.min(4096)),
            max_samples,
            lifetime: UsageAccumulator::default(),
            window: UsageAccumulator::default(),
        }
    }

    /// Appends a raw sensor sample, evicting the oldest beyond capacity.
    pub fn push_sample(&mut self, sample: SensorSample) {
        if self.max_samples == 0 {
            return;
        }
        if self.samples.len() == self.max_samples {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Folds one step of activity into both accumulators.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        soc: Soc,
        current: Amperes,
        discharged: AmpHours,
        charged: AmpHours,
        energy_out: WattHours,
        energy_in: WattHours,
        dt: SimDuration,
    ) {
        self.lifetime
            .record(soc, current, discharged, charged, energy_out, energy_in, dt);
        self.window
            .record(soc, current, discharged, charged, energy_out, energy_in, dt);
    }

    /// Registers a full-charge event in both accumulators.
    pub fn record_full_charge(&mut self) {
        self.lifetime.full_charge_events += 1;
        self.window.full_charge_events += 1;
    }

    /// Retained raw sensor samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &SensorSample> {
        self.samples.iter()
    }

    /// The most recent sensor sample, if any.
    pub fn latest(&self) -> Option<&SensorSample> {
        self.samples.back()
    }

    /// Usage counters since the battery was installed.
    pub fn lifetime(&self) -> &UsageAccumulator {
        &self.lifetime
    }

    /// Usage counters since the last [`TelemetryLog::reset_window`].
    pub fn window(&self) -> &UsageAccumulator {
        &self.window
    }

    /// Resets the window accumulator (e.g. at the start of each control
    /// period) and returns the counters it held.
    pub fn reset_window(&mut self) -> UsageAccumulator {
        std::mem::take(&mut self.window)
    }

    /// Captures the full log contents for a checkpoint.
    pub fn capture(&self) -> crate::state::TelemetryState {
        crate::state::TelemetryState {
            max_samples: self.max_samples,
            samples: self.samples.iter().copied().collect(),
            lifetime: self.lifetime,
            window: self.window,
        }
    }

    /// Rebuilds a log from captured contents. The restored log compares
    /// equal to the one [`TelemetryLog::capture`] saw, including ring
    /// capacity and eviction position.
    pub fn restore(state: &crate::state::TelemetryState) -> Self {
        Self {
            samples: state.samples.iter().copied().collect(),
            max_samples: state.max_samples,
            lifetime: state.lifetime,
            window: state.window,
        }
    }
}

impl Default for TelemetryLog {
    fn default() -> Self {
        Self::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc(v: f64) -> Soc {
        Soc::new(v).unwrap()
    }

    fn record_step(acc: &mut UsageAccumulator, soc_v: f64, amps: f64, secs: u64) {
        let dt = SimDuration::from_secs(secs);
        let (dis, chg) = if amps >= 0.0 {
            (Amperes::new(amps) * dt, AmpHours::ZERO)
        } else {
            (AmpHours::ZERO, Amperes::new(-amps) * dt)
        };
        let (e_out, e_in) = if amps >= 0.0 {
            (Volts::new(12.0) * Amperes::new(amps) * dt, WattHours::ZERO)
        } else {
            (WattHours::ZERO, Volts::new(13.0) * Amperes::new(-amps) * dt)
        };
        acc.record(soc(soc_v), Amperes::new(amps), dis, chg, e_out, e_in, dt);
    }

    #[test]
    fn soc_bins_match_fig19_edges() {
        assert_eq!(UsageAccumulator::soc_bin(soc(0.0)), 0);
        assert_eq!(UsageAccumulator::soc_bin(soc(0.149)), 0);
        assert_eq!(UsageAccumulator::soc_bin(soc(0.15)), 1);
        assert_eq!(UsageAccumulator::soc_bin(soc(0.449)), 2);
        assert_eq!(UsageAccumulator::soc_bin(soc(0.60)), 4);
        assert_eq!(UsageAccumulator::soc_bin(soc(0.899)), 5);
        assert_eq!(UsageAccumulator::soc_bin(soc(0.90)), 6);
        assert_eq!(UsageAccumulator::soc_bin(soc(1.0)), 6);
    }

    #[test]
    fn deep_discharge_time_counts_only_below_forty() {
        let mut acc = UsageAccumulator::default();
        record_step(&mut acc, 0.5, 5.0, 600);
        record_step(&mut acc, 0.3, 5.0, 300);
        assert_eq!(acc.deep_discharge_time, SimDuration::from_secs(300));
        assert!((acc.deep_discharge_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn charge_discharge_split_by_sign() {
        let mut acc = UsageAccumulator::default();
        record_step(&mut acc, 0.5, 7.2, 3600); // 7.2 Ah out
        record_step(&mut acc, 0.5, -3.6, 3600); // 3.6 Ah in
        assert!((acc.ah_discharged.as_f64() - 7.2).abs() < 1e-9);
        assert!((acc.ah_charged.as_f64() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn range_attribution_of_discharge() {
        let mut acc = UsageAccumulator::default();
        record_step(&mut acc, 0.9, 1.0, 3600); // range A
        record_step(&mut acc, 0.3, 2.0, 3600); // range D
        assert!((acc.ah_discharged_by_range[0].as_f64() - 1.0).abs() < 1e-9);
        assert!((acc.ah_discharged_by_range[3].as_f64() - 2.0).abs() < 1e-9);
        assert_eq!(acc.ah_discharged_by_range[1], AmpHours::ZERO);
    }

    #[test]
    fn mean_and_peak_discharge_current() {
        let mut acc = UsageAccumulator::default();
        record_step(&mut acc, 0.5, 2.0, 100);
        record_step(&mut acc, 0.5, 6.0, 100);
        record_step(&mut acc, 0.5, -3.0, 100); // charging, ignored
        assert_eq!(acc.peak_discharge, Amperes::new(6.0));
        assert!((acc.mean_discharge_current().as_f64() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_efficiency_requires_energy_in() {
        let mut acc = UsageAccumulator::default();
        assert!(acc.round_trip_efficiency().is_none());
        record_step(&mut acc, 0.5, -5.0, 3600);
        record_step(&mut acc, 0.5, 5.0, 3600);
        let eff = acc.round_trip_efficiency().unwrap();
        assert!((eff - 12.0 / 13.0).abs() < 1e-9);
    }

    #[test]
    fn log_window_resets_but_lifetime_persists() {
        let mut log = TelemetryLog::new(16);
        let dt = SimDuration::from_secs(60);
        log.record(
            soc(0.5),
            Amperes::new(5.0),
            Amperes::new(5.0) * dt,
            AmpHours::ZERO,
            WattHours::new(6.0),
            WattHours::ZERO,
            dt,
        );
        let taken = log.reset_window();
        assert!(taken.ah_discharged.as_f64() > 0.0);
        assert_eq!(log.window().ah_discharged, AmpHours::ZERO);
        assert!(log.lifetime().ah_discharged.as_f64() > 0.0);
    }

    #[test]
    fn sample_ring_evicts_oldest() {
        let mut log = TelemetryLog::new(2);
        for i in 0..3 {
            log.push_sample(SensorSample {
                at: SimInstant::from_secs(i),
                voltage: Volts::new(12.0),
                current: Amperes::ZERO,
                temperature: Celsius::new(25.0),
                soc: soc(0.5),
            });
        }
        assert_eq!(log.samples().count(), 2);
        assert_eq!(log.latest().unwrap().at, SimInstant::from_secs(2));
        assert_eq!(log.samples().next().unwrap().at, SimInstant::from_secs(1));
    }
}
