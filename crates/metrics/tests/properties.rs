//! Property-based tests for the aging metrics.

use baat_battery::UsageAccumulator;
use baat_metrics::{
    dod_goal, rank_nodes, weighted_aging, AgingMetrics, BatteryRatings, PlannedAgingInputs,
};
use baat_testkit::prelude::*;
use baat_units::{AmpHours, Amperes, SimDuration, Soc, Volts, WattHours};
use baat_workload::{DemandClass, EnergyDemand, PowerDemand};

fn ratings() -> BatteryRatings {
    BatteryRatings {
        capacity: AmpHours::new(35.0),
        lifetime_throughput: AmpHours::new(17_500.0),
    }
}

fn record(acc: &mut UsageAccumulator, soc: f64, amps: f64, secs: u64) {
    let dt = SimDuration::from_secs(secs);
    let (dis, chg) = if amps >= 0.0 {
        (Amperes::new(amps) * dt, AmpHours::ZERO)
    } else {
        (AmpHours::ZERO, Amperes::new(-amps) * dt)
    };
    acc.record(
        Soc::new(soc).unwrap(),
        Amperes::new(amps),
        dis,
        chg,
        Volts::new(12.0) * Amperes::new(amps.max(0.0)) * dt,
        WattHours::ZERO,
        dt,
    );
}

fn class_strategy() -> impl Strategy<Value = DemandClass> {
    prop_oneof![
        Just(DemandClass {
            power: PowerDemand::Large,
            energy: EnergyDemand::More
        }),
        Just(DemandClass {
            power: PowerDemand::Large,
            energy: EnergyDemand::Less
        }),
        Just(DemandClass {
            power: PowerDemand::Small,
            energy: EnergyDemand::More
        }),
        Just(DemandClass {
            power: PowerDemand::Small,
            energy: EnergyDemand::Less
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted aging is non-negative, bounded by the sum of weights, and
    /// zero for an untouched battery.
    #[test]
    fn weighted_aging_bounded(
        steps in baat_testkit::collection::vec((0.0f64..1.0, -20.0f64..40.0, 60u64..3600), 0..30),
        class in class_strategy(),
    ) {
        let mut acc = UsageAccumulator::default();
        for (soc, amps, secs) in steps {
            record(&mut acc, soc, amps, secs);
        }
        let m = AgingMetrics::from_accumulator(&acc, &ratings());
        let w = weighted_aging(&m, class);
        prop_assert!(w >= 0.0);
        prop_assert!(w <= 1.5, "weights sum to ≤ 1.5, got {w}");
    }

    /// NAT is linear: doubling every discharge doubles NAT.
    #[test]
    fn nat_is_linear(amps in 1.0f64..30.0, secs in 600u64..7200) {
        let mut one = UsageAccumulator::default();
        record(&mut one, 0.5, amps, secs);
        let mut two = UsageAccumulator::default();
        record(&mut two, 0.5, amps, secs);
        record(&mut two, 0.5, amps, secs);
        let m1 = AgingMetrics::from_accumulator(&one, &ratings());
        let m2 = AgingMetrics::from_accumulator(&two, &ratings());
        prop_assert!((m2.nat - 2.0 * m1.nat).abs() < 1e-12);
    }

    /// PC's Eq-4 value lies in [0.25, 1] whenever anything was discharged.
    #[test]
    fn pc_range(socs in baat_testkit::collection::vec(0.0f64..1.0, 1..20)) {
        let mut acc = UsageAccumulator::default();
        for soc in socs {
            record(&mut acc, soc, 5.0, 600);
        }
        let m = AgingMetrics::from_accumulator(&acc, &ratings());
        let pc = m.pc.weighted_value();
        prop_assert!((0.25..=1.0 + 1e-12).contains(&pc), "pc {pc}");
        let shares: f64 = m.pc.share_by_range.iter().sum();
        prop_assert!((shares - 1.0).abs() < 1e-9);
    }

    /// Ranking is a permutation and sorted by the weighted value.
    #[test]
    fn ranking_is_sorted_permutation(
        nats in baat_testkit::collection::vec(0.0f64..1.0, 2..8),
        class in class_strategy(),
    ) {
        let metrics: Vec<AgingMetrics> = nats
            .iter()
            .map(|&nat| {
                let mut acc = UsageAccumulator::default();
                record(&mut acc, 0.5, 10.0, (nat * 36_000.0) as u64 + 60);
                AgingMetrics::from_accumulator(&acc, &ratings())
            })
            .collect();
        let order = rank_nodes(&metrics, class);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..metrics.len()).collect::<Vec<_>>());
        for pair in order.windows(2) {
            prop_assert!(
                weighted_aging(&metrics[pair[0]], class)
                    <= weighted_aging(&metrics[pair[1]], class) + 1e-12
            );
        }
    }

    /// The Eq-7 DoD goal, when defined, is within the clamp range and
    /// decreases (or holds) as more throughput has been used.
    #[test]
    fn dod_goal_monotone_in_usage(used1 in 0.0f64..10_000.0, used2 in 0.0f64..10_000.0, cycles in 50.0f64..5000.0) {
        prop_assume!(used1 < used2);
        let goal = |used: f64| dod_goal(&PlannedAgingInputs {
            total_throughput: AmpHours::new(17_500.0),
            used_throughput: AmpHours::new(used),
            capacity: AmpHours::new(35.0),
            planned_cycles: cycles,
        });
        let g1 = goal(used1).expect("remaining life");
        let g2 = goal(used2).expect("remaining life");
        prop_assert!((0.05..=0.90).contains(&g1.value()));
        prop_assert!(g2 <= g1);
    }
}
