//! Table-3 sensitivities and the Eq-6 weighted aging value.
//!
//! BAAT's aging-hiding scheduler ranks battery nodes by a weighted
//! combination of NAT, CF and PC. The weighting factors depend on the
//! incoming workload's power/energy demand class (paper Table 3): a, b, c
//! in Eq 6 are 50 % for "High" sensitivity, 30 % for "Medium" and 20 %
//! for "Low".

use baat_workload::{DemandClass, EnergyDemand, PowerDemand};

use crate::five::AgingMetrics;

/// Sensitivity of a metric to a workload's demand class (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sensitivity {
    /// High impact — Eq 6 weight 0.5.
    High,
    /// Medium impact — Eq 6 weight 0.3.
    Medium,
    /// Low impact — Eq 6 weight 0.2.
    Low,
}

impl Sensitivity {
    /// The Eq-6 weighting factor for this sensitivity.
    pub fn weight(self) -> f64 {
        match self {
            Sensitivity::High => 0.5,
            Sensitivity::Medium => 0.3,
            Sensitivity::Low => 0.2,
        }
    }
}

/// The per-metric sensitivities of one Table-3 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricSensitivities {
    /// ΔNAT sensitivity.
    pub nat: Sensitivity,
    /// ΔCF sensitivity.
    pub cf: Sensitivity,
    /// ΔPC sensitivity.
    pub pc: Sensitivity,
}

/// Looks up the Table-3 row for a workload demand class.
///
/// | Power | Energy | ΔNAT | ΔCF | ΔPC |
/// |-------|--------|------|-----|-----|
/// | Large | Less   | Medium | High | High |
/// | Large | More   | High | High | High |
/// | Small | More   | High | Low  | Medium |
/// | Small | Less   | Low  | Low  | Low |
pub fn table3_sensitivities(class: DemandClass) -> MetricSensitivities {
    use EnergyDemand::{Less, More};
    use PowerDemand::{Large, Small};
    match (class.power, class.energy) {
        (Large, Less) => MetricSensitivities {
            nat: Sensitivity::Medium,
            cf: Sensitivity::High,
            pc: Sensitivity::High,
        },
        (Large, More) => MetricSensitivities {
            nat: Sensitivity::High,
            cf: Sensitivity::High,
            pc: Sensitivity::High,
        },
        (Small, More) => MetricSensitivities {
            nat: Sensitivity::High,
            cf: Sensitivity::Low,
            pc: Sensitivity::Medium,
        },
        (Small, Less) => MetricSensitivities {
            nat: Sensitivity::Low,
            cf: Sensitivity::Low,
            pc: Sensitivity::Low,
        },
    }
}

/// Normalized per-metric "badness" scores in `[0, 1]`, higher = faster
/// aging, derived from the §IV.B.2.b reading of each metric:
///
/// * NAT — "a very high value of Ah-throughput indicates faster aging";
/// * CF — "a low CF value implies that the battery has more discharging
///   events than charging (to their full capacity)";
/// * PC — cycling concentrated at low SoC (high Eq-4 value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingScores {
    /// Throughput badness: NAT clamped to `[0, 1]`.
    pub nat: f64,
    /// Recharge-deficiency badness: shortfall of CF below the healthy
    /// band, scaled so CF ≤ 0.6 saturates at 1.
    pub cf: f64,
    /// Low-SoC cycling badness: Eq-4 PC rescaled from `[0.25, 1]` to
    /// `[0, 1]`.
    pub pc: f64,
}

impl AgingScores {
    /// Derives the badness scores from raw metrics.
    pub fn from_metrics(m: &AgingMetrics) -> Self {
        let nat = m.nat.clamp(0.0, 1.0);
        let cf = match m.cf {
            // CF at/above 1.0 is healthy; each 0.1 below adds 0.25.
            Some(cf) => ((1.0 - cf) / 0.4).clamp(0.0, 1.0),
            None => 0.0,
        };
        let pc_raw = m.pc.weighted_value();
        let pc = if pc_raw <= 0.0 {
            0.0
        } else {
            ((pc_raw - 0.25) / 0.75).clamp(0.0, 1.0)
        };
        Self { nat, cf, pc }
    }
}

/// The Eq-6 weighted aging value for one battery under a prospective
/// workload class:
///
/// `Weighted_aging = a·ΔCF + b·ΔPC + c·ΔNAT`
///
/// Larger values indicate faster aging; BAAT places new load on the node
/// with the *smallest* weighted aging.
///
/// # Examples
///
/// ```
/// use baat_battery::UsageAccumulator;
/// use baat_metrics::{weighted_aging, AgingMetrics, BatteryRatings};
/// use baat_units::AmpHours;
/// use baat_workload::{DemandClass, EnergyDemand, PowerDemand};
///
/// let ratings = BatteryRatings {
///     capacity: AmpHours::new(35.0),
///     lifetime_throughput: AmpHours::new(17_500.0),
/// };
/// let metrics = AgingMetrics::from_accumulator(&UsageAccumulator::default(), &ratings);
/// let class = DemandClass { power: PowerDemand::Large, energy: EnergyDemand::More };
/// assert_eq!(weighted_aging(&metrics, class), 0.0);
/// ```
pub fn weighted_aging(metrics: &AgingMetrics, class: DemandClass) -> f64 {
    let s = table3_sensitivities(class);
    let scores = AgingScores::from_metrics(metrics);
    s.cf.weight() * scores.cf + s.pc.weight() * scores.pc + s.nat.weight() * scores.nat
}

/// All four Table-3 demand classes, in [`class_index`] order. Fleet-wide
/// score caches keep one weighted-aging value per entry.
pub const DEMAND_CLASSES: [DemandClass; 4] = [
    DemandClass {
        power: PowerDemand::Large,
        energy: EnergyDemand::Less,
    },
    DemandClass {
        power: PowerDemand::Large,
        energy: EnergyDemand::More,
    },
    DemandClass {
        power: PowerDemand::Small,
        energy: EnergyDemand::Less,
    },
    DemandClass {
        power: PowerDemand::Small,
        energy: EnergyDemand::More,
    },
];

/// Dense index of a demand class into [`DEMAND_CLASSES`].
pub fn class_index(class: DemandClass) -> usize {
    let p = match class.power {
        PowerDemand::Large => 0,
        PowerDemand::Small => 1,
    };
    let e = match class.energy {
        EnergyDemand::Less => 0,
        EnergyDemand::More => 1,
    };
    p * 2 + e
}

/// The Eq-6 weighted aging value for every demand class at once, indexed
/// by [`class_index`]. Each entry is computed by the same
/// [`weighted_aging`] call a per-class lookup would make, so the values
/// are bit-identical to scoring classes one at a time.
pub fn weighted_aging_all(metrics: &AgingMetrics) -> [f64; 4] {
    let mut out = [0.0; 4];
    for (slot, class) in out.iter_mut().zip(DEMAND_CLASSES) {
        *slot = weighted_aging(metrics, class);
    }
    out
}

/// Ranks battery nodes by weighted aging, least-aged first — the Fig 8
/// placement order.
///
/// Returns the node indices sorted ascending by weighted aging.
pub fn rank_nodes(metrics: &[AgingMetrics], class: DemandClass) -> Vec<usize> {
    let mut order: Vec<usize> = (0..metrics.len()).collect();
    order.sort_by(|&a, &b| {
        weighted_aging(&metrics[a], class).total_cmp(&weighted_aging(&metrics[b], class))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::five::{BatteryRatings, PartialCycling};
    use baat_battery::UsageAccumulator;
    use baat_units::{AmpHours, Amperes, Fraction, SimDuration, Soc, Volts, WattHours};

    fn class(p: PowerDemand, e: EnergyDemand) -> DemandClass {
        DemandClass {
            power: p,
            energy: e,
        }
    }

    fn ratings() -> BatteryRatings {
        BatteryRatings {
            capacity: AmpHours::new(35.0),
            lifetime_throughput: AmpHours::new(17_500.0),
        }
    }

    fn metrics_with(nat: f64, cf: Option<f64>, low_soc_share: f64) -> AgingMetrics {
        AgingMetrics {
            nat,
            cf,
            pc: PartialCycling {
                share_by_range: [1.0 - low_soc_share, 0.0, 0.0, low_soc_share],
            },
            ddt: Fraction::ZERO,
            dr: crate::five::DischargeRate {
                peak_c_rate: 0.0,
                mean_c_rate: 0.0,
            },
        }
    }

    #[test]
    fn sensitivity_weights_match_paper() {
        assert_eq!(Sensitivity::High.weight(), 0.5);
        assert_eq!(Sensitivity::Medium.weight(), 0.3);
        assert_eq!(Sensitivity::Low.weight(), 0.2);
    }

    #[test]
    fn table3_rows_match_paper() {
        let ll = table3_sensitivities(class(PowerDemand::Large, EnergyDemand::Less));
        assert_eq!(
            (ll.nat, ll.cf, ll.pc),
            (Sensitivity::Medium, Sensitivity::High, Sensitivity::High)
        );
        let lm = table3_sensitivities(class(PowerDemand::Large, EnergyDemand::More));
        assert_eq!(
            (lm.nat, lm.cf, lm.pc),
            (Sensitivity::High, Sensitivity::High, Sensitivity::High)
        );
        let sm = table3_sensitivities(class(PowerDemand::Small, EnergyDemand::More));
        assert_eq!(
            (sm.nat, sm.cf, sm.pc),
            (Sensitivity::High, Sensitivity::Low, Sensitivity::Medium)
        );
        let sl = table3_sensitivities(class(PowerDemand::Small, EnergyDemand::Less));
        assert_eq!(
            (sl.nat, sl.cf, sl.pc),
            (Sensitivity::Low, Sensitivity::Low, Sensitivity::Low)
        );
    }

    #[test]
    fn worn_battery_scores_higher() {
        let fresh = metrics_with(0.05, Some(1.1), 0.0);
        let worn = metrics_with(0.6, Some(0.8), 0.8);
        let c = class(PowerDemand::Large, EnergyDemand::More);
        assert!(weighted_aging(&worn, c) > weighted_aging(&fresh, c));
    }

    #[test]
    fn low_cf_raises_score() {
        let good_cf = metrics_with(0.2, Some(1.2), 0.2);
        let bad_cf = metrics_with(0.2, Some(0.7), 0.2);
        let c = class(PowerDemand::Large, EnergyDemand::Less);
        assert!(weighted_aging(&bad_cf, c) > weighted_aging(&good_cf, c));
    }

    #[test]
    fn ranking_orders_least_aged_first() {
        let nodes = vec![
            metrics_with(0.5, Some(0.9), 0.5),
            metrics_with(0.1, Some(1.2), 0.1),
            metrics_with(0.9, Some(0.7), 0.9),
        ];
        let order = rank_nodes(&nodes, class(PowerDemand::Large, EnergyDemand::More));
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn scores_bounded_zero_one() {
        let extreme = metrics_with(5.0, Some(-1.0), 1.0);
        let s = AgingScores::from_metrics(&extreme);
        for v in [s.nat, s.cf, s.pc] {
            assert!((0.0..=1.0).contains(&v), "score {v}");
        }
    }

    #[test]
    fn fresh_accumulator_scores_zero() {
        let m = AgingMetrics::from_accumulator(&UsageAccumulator::default(), &ratings());
        for c in [
            class(PowerDemand::Large, EnergyDemand::More),
            class(PowerDemand::Small, EnergyDemand::Less),
        ] {
            assert_eq!(weighted_aging(&m, c), 0.0);
        }
    }

    #[test]
    fn all_classes_scores_match_per_class_calls() {
        let m = metrics_with(0.37, Some(0.83), 0.44);
        let all = weighted_aging_all(&m);
        for class in DEMAND_CLASSES {
            assert_eq!(all[class_index(class)], weighted_aging(&m, class));
        }
        // The dense index is a bijection over the four classes.
        let mut seen = [false; 4];
        for class in DEMAND_CLASSES {
            seen[class_index(class)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn real_accumulator_flows_through() {
        let mut acc = UsageAccumulator::default();
        let dt = SimDuration::from_hours(1);
        acc.record(
            Soc::new(0.3).unwrap(),
            Amperes::new(10.0),
            Amperes::new(10.0) * dt,
            AmpHours::ZERO,
            Volts::new(12.0) * Amperes::new(10.0) * dt,
            WattHours::ZERO,
            dt,
        );
        let m = AgingMetrics::from_accumulator(&acc, &ratings());
        let w = weighted_aging(&m, class(PowerDemand::Large, EnergyDemand::More));
        assert!(w > 0.0);
    }
}
