//! The five battery-aging metrics of paper §III (Eqs 1–5).
//!
//! Each metric is computed from a [`UsageAccumulator`] — the integrals the
//! prototype's sensors accumulate — plus the battery's static ratings.

use baat_battery::UsageAccumulator;
use baat_units::{AmpHours, Fraction};

/// Static battery ratings the metrics are normalized by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryRatings {
    /// Nominal capacity (for C-rate normalization).
    pub capacity: AmpHours,
    /// Nominal life-long Ah output, `CAP_nom` in Eq 1.
    pub lifetime_throughput: AmpHours,
}

/// Normalized Ah throughput (Eq 1): cumulative discharged charge over the
/// nominal life-long output. Low for backup-style operation, high for
/// full cycling; high NAT accelerates active-mass degradation.
pub fn normalized_ah_throughput(acc: &UsageAccumulator, ratings: &BatteryRatings) -> f64 {
    acc.ah_discharged.as_f64() / ratings.lifetime_throughput.as_f64()
}

/// Charge factor (Eq 2): cumulative charge Ah over discharge Ah.
///
/// Returns `None` before any discharge. Typical healthy range is
/// 1–1.3; below it sulphation/stratification dominate, above it
/// shedding, water loss and corrosion accelerate.
pub fn charge_factor(acc: &UsageAccumulator) -> Option<f64> {
    if acc.ah_discharged.as_f64() <= 0.0 {
        return None;
    }
    Some(acc.ah_charged.as_f64() / acc.ah_discharged.as_f64())
}

/// The healthy charge-factor band from §III.B.
pub const CHARGE_FACTOR_HEALTHY: core::ops::RangeInclusive<f64> = 1.0..=1.3;

/// Partial cycling (Eqs 3–4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialCycling {
    /// `PC_X`: share of discharged Ah in each SoC range A–D (Eq 3).
    pub share_by_range: [f64; 4],
}

impl PartialCycling {
    /// Computes the range shares from the accumulator.
    ///
    /// With no discharge recorded, all shares are zero.
    pub fn from_accumulator(acc: &UsageAccumulator) -> Self {
        let total = acc.ah_discharged.as_f64();
        let share_by_range = if total <= 0.0 {
            [0.0; 4]
        } else {
            [0, 1, 2, 3].map(|i| acc.ah_discharged_by_range[i].as_f64() / total)
        };
        Self { share_by_range }
    }

    /// The Eq-4 weighted PC value in `[0.25, 1]` (or 0 with no discharge):
    /// `(PC_A·1 + PC_B·2 + PC_C·3 + PC_D·4) / 4`.
    ///
    /// **Higher is worse** — cycling at low SoC weighs 4× cycling near
    /// full (§III.C: "The higher value of PC will accelerate the battery
    /// aging").
    pub fn weighted_value(&self) -> f64 {
        self.share_by_range
            .iter()
            .enumerate()
            .map(|(i, s)| s * (i as f64 + 1.0))
            .sum::<f64>()
            / 4.0
    }

    /// Share of discharge done at comfortable SoC (ranges A+B).
    ///
    /// This is the "PC value" the paper's *evaluation* narrates (higher =
    /// battery stays at high SoC = healthier); the Eq-4
    /// [`weighted_value`](Self::weighted_value) moves oppositely.
    pub fn high_soc_share(&self) -> Fraction {
        Fraction::saturating(self.share_by_range[0] + self.share_by_range[1])
    }
}

/// Deep discharge time (Eq 5): fraction of observed time below 40 % SoC.
/// Time-based, unlike PC; prolonged low SoC drives irreversible
/// sulphation and threatens the 2-minute reserve availability rule.
pub fn deep_discharge_time(acc: &UsageAccumulator) -> Fraction {
    Fraction::saturating(acc.deep_discharge_fraction())
}

/// Discharge rate (§III.E), as C-rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DischargeRate {
    /// Peak discharge C-rate observed (1/h).
    pub peak_c_rate: f64,
    /// Mean discharge C-rate while discharging (1/h).
    pub mean_c_rate: f64,
}

impl DischargeRate {
    /// Computes discharge-rate statistics from the accumulator.
    pub fn from_accumulator(acc: &UsageAccumulator, ratings: &BatteryRatings) -> Self {
        let cap = ratings.capacity.as_f64();
        Self {
            peak_c_rate: acc.peak_discharge.as_f64() / cap,
            mean_c_rate: acc.mean_discharge_current().as_f64() / cap,
        }
    }
}

/// All five metrics for one battery over one observation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingMetrics {
    /// Normalized Ah throughput (Eq 1).
    pub nat: f64,
    /// Charge factor (Eq 2); `None` before any discharge.
    pub cf: Option<f64>,
    /// Partial cycling (Eqs 3–4).
    pub pc: PartialCycling,
    /// Deep discharge time fraction (Eq 5).
    pub ddt: Fraction,
    /// Discharge-rate statistics (§III.E).
    pub dr: DischargeRate,
}

impl AgingMetrics {
    /// Computes the full metric set from one accumulator.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_battery::UsageAccumulator;
    /// use baat_metrics::{AgingMetrics, BatteryRatings};
    /// use baat_units::AmpHours;
    ///
    /// let ratings = BatteryRatings {
    ///     capacity: AmpHours::new(35.0),
    ///     lifetime_throughput: AmpHours::new(17_500.0),
    /// };
    /// let metrics = AgingMetrics::from_accumulator(&UsageAccumulator::default(), &ratings);
    /// assert_eq!(metrics.nat, 0.0);
    /// assert!(metrics.cf.is_none());
    /// ```
    pub fn from_accumulator(acc: &UsageAccumulator, ratings: &BatteryRatings) -> Self {
        Self {
            nat: normalized_ah_throughput(acc, ratings),
            cf: charge_factor(acc),
            pc: PartialCycling::from_accumulator(acc),
            ddt: deep_discharge_time(acc),
            dr: DischargeRate::from_accumulator(acc, ratings),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::{Amperes, SimDuration, Soc, Volts, WattHours};

    fn ratings() -> BatteryRatings {
        BatteryRatings {
            capacity: AmpHours::new(35.0),
            lifetime_throughput: AmpHours::new(17_500.0),
        }
    }

    fn record(acc: &mut UsageAccumulator, soc: f64, amps: f64, secs: u64) {
        let dt = SimDuration::from_secs(secs);
        let (dis, chg) = if amps >= 0.0 {
            (Amperes::new(amps) * dt, AmpHours::ZERO)
        } else {
            (AmpHours::ZERO, Amperes::new(-amps) * dt)
        };
        acc.record(
            Soc::new(soc).unwrap(),
            Amperes::new(amps),
            dis,
            chg,
            (Volts::new(12.0) * Amperes::new(amps.max(0.0))) * dt,
            WattHours::ZERO,
            dt,
        );
    }

    #[test]
    fn nat_is_discharge_over_lifetime_throughput() {
        let mut acc = UsageAccumulator::default();
        record(&mut acc, 0.7, 17.5, 3600); // 17.5 Ah
        let nat = normalized_ah_throughput(&acc, &ratings());
        assert!((nat - 0.001).abs() < 1e-12);
    }

    #[test]
    fn cf_none_until_discharge_then_ratio() {
        let mut acc = UsageAccumulator::default();
        record(&mut acc, 0.9, -5.0, 3600);
        assert_eq!(charge_factor(&acc), None);
        record(&mut acc, 0.8, 4.0, 3600);
        let cf = charge_factor(&acc).unwrap();
        assert!((cf - 1.25).abs() < 1e-12);
        assert!(CHARGE_FACTOR_HEALTHY.contains(&cf));
    }

    #[test]
    fn pc_weighted_range_endpoints() {
        // All discharge in range A → 0.25; all in range D → 1.0.
        let mut high = UsageAccumulator::default();
        record(&mut high, 0.9, 5.0, 3600);
        let pc_high = PartialCycling::from_accumulator(&high);
        assert!((pc_high.weighted_value() - 0.25).abs() < 1e-12);
        assert_eq!(pc_high.high_soc_share(), Fraction::ONE);

        let mut low = UsageAccumulator::default();
        record(&mut low, 0.1, 5.0, 3600);
        let pc_low = PartialCycling::from_accumulator(&low);
        assert!((pc_low.weighted_value() - 1.0).abs() < 1e-12);
        assert_eq!(pc_low.high_soc_share(), Fraction::ZERO);
    }

    #[test]
    fn pc_mixed_discharge_weights_linearly() {
        let mut acc = UsageAccumulator::default();
        record(&mut acc, 0.9, 5.0, 3600); // 5 Ah in A (weight 1)
        record(&mut acc, 0.5, 5.0, 3600); // 5 Ah in C (weight 3)
        let pc = PartialCycling::from_accumulator(&acc);
        assert!((pc.weighted_value() - 0.5).abs() < 1e-12); // (0.5·1+0.5·3)/4
    }

    #[test]
    fn ddt_counts_time_not_charge() {
        let mut acc = UsageAccumulator::default();
        record(&mut acc, 0.2, 0.1, 900); // tiny current, deep, 15 min
        record(&mut acc, 0.8, 20.0, 2700); // big current, high, 45 min
        let ddt = deep_discharge_time(&acc);
        assert!((ddt.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dr_peak_and_mean_c_rates() {
        let mut acc = UsageAccumulator::default();
        record(&mut acc, 0.5, 35.0, 600); // 1C for 10 min
        record(&mut acc, 0.5, 7.0, 600); // 0.2C for 10 min
        let dr = DischargeRate::from_accumulator(&acc, &ratings());
        assert!((dr.peak_c_rate - 1.0).abs() < 1e-12);
        assert!((dr.mean_c_rate - 0.6).abs() < 1e-12);
    }

    #[test]
    fn full_metric_set_from_empty_accumulator() {
        let m = AgingMetrics::from_accumulator(&UsageAccumulator::default(), &ratings());
        assert_eq!(m.nat, 0.0);
        assert!(m.cf.is_none());
        assert_eq!(m.pc.weighted_value(), 0.0);
        assert_eq!(m.ddt, Fraction::ZERO);
        assert_eq!(m.dr.peak_c_rate, 0.0);
    }
}
