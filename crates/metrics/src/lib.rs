//! The five BAAT battery-aging metrics and the derived decision values.
//!
//! Paper §III formulates five metrics that "quantitatively reflect battery
//! aging progresses" from sensor telemetry:
//!
//! | Metric | Equation | Function |
//! |--------|----------|----------|
//! | NAT — normalized Ah throughput | Eq 1 | [`normalized_ah_throughput`] |
//! | CF — charge factor | Eq 2 | [`charge_factor`] |
//! | PC — partial cycling | Eqs 3–4 | [`PartialCycling`] |
//! | DDT — deep discharge time | Eq 5 | [`deep_discharge_time`] |
//! | DR — discharge rate | §III.E | [`DischargeRate`] |
//!
//! On top of the raw metrics sit the decision values BAAT's policies use:
//!
//! * [`weighted_aging`] — the Eq-6 weighted aging value with Table-3
//!   demand-class sensitivities, and [`rank_nodes`] for Fig 8 placement;
//! * [`dod_goal`] — the Eq-7 planned-aging DoD target.
//!
//! # Examples
//!
//! ```
//! use baat_battery::{Battery, BatteryOp, BatterySpec};
//! use baat_metrics::{AgingMetrics, BatteryRatings};
//! use baat_units::{Celsius, SimDuration, SimInstant, Watts};
//!
//! let mut battery = Battery::new(BatterySpec::prototype());
//! battery.step(
//!     BatteryOp::Discharge(Watts::new(120.0)),
//!     Celsius::new(25.0),
//!     SimInstant::START,
//!     SimDuration::from_hours(1),
//! );
//! let ratings = BatteryRatings {
//!     capacity: battery.spec().capacity(),
//!     lifetime_throughput: battery.spec().lifetime_throughput(),
//! };
//! let metrics = AgingMetrics::from_accumulator(battery.telemetry().lifetime(), &ratings);
//! assert!(metrics.nat > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod five;
mod planned;
mod weighted;

pub use five::{
    charge_factor, deep_discharge_time, normalized_ah_throughput, AgingMetrics, BatteryRatings,
    DischargeRate, PartialCycling, CHARGE_FACTOR_HEALTHY,
};
pub use planned::{
    dod_goal, observed_cycles_per_day, planned_cycles, PlannedAgingInputs, DOD_GOAL_RANGE,
};
pub use weighted::{
    class_index, rank_nodes, table3_sensitivities, weighted_aging, weighted_aging_all, AgingScores,
    MetricSensitivities, Sensitivity, DEMAND_CLASSES,
};
