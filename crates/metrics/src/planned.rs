//! Planned aging: the Eq-7 DoD goal.
//!
//! When batteries would outlive the datacenter they serve, BAAT trades the
//! unusable tail of battery life for present performance by deepening the
//! allowed depth of discharge (paper §IV.D):
//!
//! `DoD_goal = (C_total − C_used) / Cycle_plan × 100 %`
//!
//! where `C_total` is the manufacturer's total Ah-throughput rating,
//! `C_used` the throughput already consumed, and `Cycle_plan` the number
//! of cycles expected before the planned discard date.

use baat_units::{AmpHours, Dod};

/// Bounds on the planned DoD: never discharge past 90 % (the paper's
/// "upper bound of battery discharge (i.e., over 90 % DoD)"), never plan
/// shallower than 5 %.
pub const DOD_GOAL_RANGE: core::ops::RangeInclusive<f64> = 0.05..=0.90;

/// Inputs to the Eq-7 planned-aging computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedAgingInputs {
    /// `C_total`: nominal life-long Ah throughput.
    pub total_throughput: AmpHours,
    /// `C_used`: Ah throughput already discharged.
    pub used_throughput: AmpHours,
    /// Nominal battery capacity (converts per-cycle Ah into a DoD).
    pub capacity: AmpHours,
    /// `Cycle_plan`: cycles expected before the planned discard date
    /// (estimated from the usage log, e.g. one cycle per operating day).
    pub planned_cycles: f64,
}

/// Computes the Eq-7 DoD goal, clamped into [`DOD_GOAL_RANGE`].
///
/// Returns `None` when `planned_cycles` is not positive or the battery
/// has no remaining throughput — planned aging is then meaningless and
/// the caller should fall back to the conservative threshold.
///
/// # Examples
///
/// ```
/// use baat_metrics::{dod_goal, PlannedAgingInputs};
/// use baat_units::AmpHours;
///
/// let goal = dod_goal(&PlannedAgingInputs {
///     total_throughput: AmpHours::new(17_500.0),
///     used_throughput: AmpHours::new(7_000.0),
///     capacity: AmpHours::new(35.0),
///     planned_cycles: 600.0,
/// })
/// .unwrap();
/// // (17500 − 7000) / 600 = 17.5 Ah/cycle = 50 % of 35 Ah.
/// assert!((goal.value() - 0.5).abs() < 1e-9);
/// ```
pub fn dod_goal(inputs: &PlannedAgingInputs) -> Option<Dod> {
    if inputs.planned_cycles <= 0.0 || !inputs.planned_cycles.is_finite() {
        return None;
    }
    let remaining = inputs.total_throughput.as_f64() - inputs.used_throughput.as_f64();
    if remaining <= 0.0 {
        return None;
    }
    let ah_per_cycle = remaining / inputs.planned_cycles;
    let dod = ah_per_cycle / inputs.capacity.as_f64();
    Some(Dod::saturating(
        dod.clamp(*DOD_GOAL_RANGE.start(), *DOD_GOAL_RANGE.end()),
    ))
}

/// Estimates `Cycle_plan` from a service horizon: operating days remaining
/// times cycles per day (the paper estimates this "base on the battery
/// usage log").
pub fn planned_cycles(days_remaining: f64, cycles_per_day: f64) -> f64 {
    (days_remaining * cycles_per_day).max(0.0)
}

/// Estimates the battery's full-equivalent cycles per day from its usage
/// log — the paper's "estimated base on the battery usage log in
/// datacenter": cumulative discharged Ah over capacity, per observed day.
///
/// Returns `None` until at least one full day has been observed (a
/// shorter log extrapolates too wildly to plan on).
pub fn observed_cycles_per_day(
    acc: &baat_battery::UsageAccumulator,
    capacity: AmpHours,
) -> Option<f64> {
    let days = acc.observed.as_days();
    if days < 1.0 {
        return None;
    }
    Some(acc.ah_discharged.as_f64() / capacity.as_f64() / days)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(used: f64, cycles: f64) -> PlannedAgingInputs {
        PlannedAgingInputs {
            total_throughput: AmpHours::new(17_500.0),
            used_throughput: AmpHours::new(used),
            capacity: AmpHours::new(35.0),
            planned_cycles: cycles,
        }
    }

    #[test]
    fn fresh_battery_long_horizon_gives_shallow_dod() {
        // 17 500 Ah over 2000 cycles = 8.75 Ah = 25 % DoD.
        let goal = dod_goal(&inputs(0.0, 2000.0)).unwrap();
        assert!((goal.value() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn short_horizon_deepens_dod() {
        let long = dod_goal(&inputs(0.0, 2000.0)).unwrap();
        let short = dod_goal(&inputs(0.0, 700.0)).unwrap();
        assert!(short > long);
    }

    #[test]
    fn used_throughput_shrinks_the_goal() {
        let fresh = dod_goal(&inputs(0.0, 1000.0)).unwrap();
        let worn = dod_goal(&inputs(10_000.0, 1000.0)).unwrap();
        assert!(worn < fresh);
    }

    #[test]
    fn goal_clamped_to_ninety_percent() {
        // 17 500 Ah over 100 cycles would be 500 % DoD — clamp to 90 %.
        let goal = dod_goal(&inputs(0.0, 100.0)).unwrap();
        assert!((goal.value() - 0.90).abs() < 1e-12);
    }

    #[test]
    fn goal_clamped_to_five_percent_floor() {
        let goal = dod_goal(&inputs(0.0, 1_000_000.0)).unwrap();
        assert!((goal.value() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn exhausted_battery_yields_none() {
        assert!(dod_goal(&inputs(17_500.0, 500.0)).is_none());
        assert!(dod_goal(&inputs(20_000.0, 500.0)).is_none());
    }

    #[test]
    fn invalid_cycle_plan_yields_none() {
        assert!(dod_goal(&inputs(0.0, 0.0)).is_none());
        assert!(dod_goal(&inputs(0.0, -5.0)).is_none());
        assert!(dod_goal(&inputs(0.0, f64::NAN)).is_none());
    }

    #[test]
    fn planned_cycles_from_horizon() {
        assert_eq!(planned_cycles(365.0, 1.0), 365.0);
        assert_eq!(planned_cycles(-10.0, 1.0), 0.0);
    }

    #[test]
    fn observed_cycles_need_a_full_day() {
        use baat_battery::UsageAccumulator;
        use baat_units::{Amperes, SimDuration, Soc, Volts, WattHours};
        let mut acc = UsageAccumulator::default();
        let dt = SimDuration::from_hours(6);
        acc.record(
            Soc::new(0.5).unwrap(),
            Amperes::new(7.0),
            Amperes::new(7.0) * dt,
            AmpHours::ZERO,
            Volts::new(12.0) * Amperes::new(7.0) * dt,
            WattHours::ZERO,
            dt,
        );
        assert!(observed_cycles_per_day(&acc, AmpHours::new(35.0)).is_none());
        // Extend past one day of observation.
        acc.record(
            Soc::new(0.9).unwrap(),
            Amperes::ZERO,
            AmpHours::ZERO,
            AmpHours::ZERO,
            WattHours::ZERO,
            WattHours::ZERO,
            SimDuration::from_hours(20),
        );
        let cpd = observed_cycles_per_day(&acc, AmpHours::new(35.0)).unwrap();
        // 42 Ah over 35 Ah capacity in 26 h ≈ 1.1 cycles/day.
        assert!((cpd - 42.0 / 35.0 / (26.0 / 24.0)).abs() < 1e-9);
    }
}
