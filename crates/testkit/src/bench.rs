//! Minimal wall-clock benchmark harness for `harness = false` targets.
//!
//! The registry-free replacement for `criterion`: no statistics engine,
//! just warm-up, timed batches, and a mean/min/max report per benchmark.
//! A bench target builds a [`Harness`] in `main`, registers benchmarks
//! (optionally inside named groups), and calls [`Harness::finish`]:
//!
//! ```no_run
//! use baat_testkit::bench::Harness;
//!
//! fn main() {
//!     let mut h = Harness::from_args();
//!     let mut g = h.group("hot-paths");
//!     g.bench("square", || std::hint::black_box(7u64).pow(2));
//!     h.finish();
//! }
//! ```
//!
//! CLI behaviour matches what `cargo bench` expects of a custom harness:
//! the first free argument is a substring filter, `--quick` (or env
//! `BAAT_BENCH_QUICK=1`) shrinks the measurement window for smoke runs,
//! and libtest flags that cargo forwards (`--bench`) are ignored.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing window for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Untimed warm-up duration.
    pub warm_up: Duration,
    /// Timed measurement duration.
    pub measure: Duration,
}

impl Timing {
    /// Default window: 0.5 s warm-up, 2 s measurement.
    pub const STANDARD: Timing = Timing {
        warm_up: Duration::from_millis(500),
        measure: Duration::from_secs(2),
    };

    /// Smoke-run window for CI: just enough iterations to prove the
    /// benchmarked path executes.
    pub const QUICK: Timing = Timing {
        warm_up: Duration::from_millis(10),
        measure: Duration::from_millis(50),
    };
}

/// One benchmark's measured result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `group/name` identifier.
    pub id: String,
    /// Total timed iterations.
    pub iterations: u64,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest batch's per-iteration time.
    pub min: Duration,
    /// Slowest batch's per-iteration time.
    pub max: Duration,
}

/// The top-level bench harness.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    timing: Timing,
    results: Vec<Sample>,
}

impl Harness {
    /// Builds a harness from CLI args and environment.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut quick = std::env::var("BAAT_BENCH_QUICK").is_ok_and(|v| v != "0");
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                // Flags cargo/libtest forward to custom harnesses.
                a if a.starts_with('-') => {}
                a if filter.is_none() => filter = Some(a.to_owned()),
                _ => {}
            }
        }
        Self {
            filter,
            timing: if quick {
                Timing::QUICK
            } else {
                Timing::STANDARD
            },
            results: Vec::new(),
        }
    }

    /// A harness with explicit settings (used by tests).
    pub fn with_timing(timing: Timing) -> Self {
        Self {
            filter: None,
            timing,
            results: Vec::new(),
        }
    }

    /// Opens a named group; benchmarks registered on it report as
    /// `group/name`.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            prefix: format!("{name}/"),
        }
    }

    /// Registers and immediately runs one ungrouped benchmark.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.run_one(name.to_owned(), f);
    }

    fn run_one<R>(&mut self, id: String, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let sample = measure(&id, self.timing, &mut f);
        eprintln!(
            "bench {:<44} {:>12} mean  {:>12} min  {:>12} max  ({} iters)",
            sample.id,
            fmt_duration(sample.mean),
            fmt_duration(sample.min),
            fmt_duration(sample.max),
            sample.iterations,
        );
        self.results.push(sample);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Prints the summary table. Call last in `main`.
    pub fn finish(self) {
        if self.results.is_empty() {
            eprintln!("bench: no benchmarks matched the filter");
            return;
        }
        println!("| benchmark | mean | min | max | iters |");
        println!("|---|---:|---:|---:|---:|");
        for s in &self.results {
            println!(
                "| {} | {} | {} | {} | {} |",
                s.id,
                fmt_duration(s.mean),
                fmt_duration(s.min),
                fmt_duration(s.max),
                s.iterations,
            );
        }
    }
}

/// A named benchmark group borrowed from a [`Harness`].
#[derive(Debug)]
pub struct Group<'h> {
    harness: &'h mut Harness,
    prefix: String,
}

impl Group<'_> {
    /// Registers and immediately runs one benchmark in this group.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        let id = format!("{}{name}", self.prefix);
        self.harness.run_one(id, f);
    }
}

/// Warm-up then timed batches. Batch sizes grow until one batch takes
/// ≥ ~10 ms, amortising `Instant` overhead for cheap bodies.
fn measure<R>(id: &str, timing: Timing, f: &mut impl FnMut() -> R) -> Sample {
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < timing.warm_up || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
    }

    let mut batch: u64 = 1;
    let mut total_iters: u64 = 0;
    let mut total_time = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let run_start = Instant::now();
    while run_start.elapsed() < timing.measure || total_iters == 0 {
        let batch_start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = batch_start.elapsed();
        let per_iter = elapsed / u32::try_from(batch).unwrap_or(u32::MAX);
        min = min.min(per_iter);
        max = max.max(per_iter);
        total_iters += batch;
        total_time += elapsed;
        if elapsed < Duration::from_millis(10) {
            batch = batch.saturating_mul(2);
        }
    }

    Sample {
        id: id.to_owned(),
        iterations: total_iters,
        mean: total_time / u32::try_from(total_iters).unwrap_or(u32::MAX),
        min,
        max,
    }
}

/// Human-readable duration with ns/µs/ms/s autoscaling.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_body() {
        let mut h = Harness::with_timing(Timing::QUICK);
        h.bench("noop", || 1 + 1);
        let s = &h.results()[0];
        assert_eq!(s.id, "noop");
        assert!(s.iterations > 0);
        assert!(s.min <= s.mean && s.mean <= s.max.max(s.mean));
    }

    #[test]
    fn groups_prefix_ids() {
        let mut h = Harness::with_timing(Timing::QUICK);
        h.group("g").bench("inner", || ());
        assert_eq!(h.results()[0].id, "g/inner");
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
