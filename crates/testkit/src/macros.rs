//! The `proptest`-compatible macro surface.
//!
//! [`proptest!`](crate::proptest) accepts the subset of `proptest` syntax
//! the workspace uses: an optional `#![proptest_config(...)]` header and
//! `#[test] fn name(arg in strategy, ...) { body }` items whose bodies
//! use [`prop_assert!`](crate::prop_assert),
//! [`prop_assert_eq!`](crate::prop_assert_eq),
//! [`prop_assert_ne!`](crate::prop_assert_ne) and
//! [`prop_assume!`](crate::prop_assume).

/// Declares seeded property tests.
///
/// Each declared function becomes a plain `#[test]` that generates
/// `cases` inputs from the given strategies and runs the body once per
/// case. See the crate docs for replay instructions.
///
/// # Examples
///
/// ```
/// use baat_testkit::prelude::*;
///
/// proptest! {
///     #[test]
///     fn squares_are_non_negative(x in -100i64..100) {
///         prop_assert!(x * x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Expands the individual test items of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __tk_cfg: $crate::ProptestConfig = $cfg;
            $crate::__run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &__tk_cfg,
                |__tk_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __tk_rng);)+
                    let __tk_inputs = $crate::__format_inputs(&[
                        $((stringify!($arg), &$arg as &dyn ::core::fmt::Debug)),+
                    ]);
                    let __tk_outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> $crate::TestCaseResult {
                            $body;
                            ::core::result::Result::Ok(())
                        }),
                    );
                    (__tk_outcome, __tk_inputs)
                },
            );
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property body, failing the case (with
/// input reporting) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__tk_l, __tk_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__tk_l == *__tk_r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __tk_l,
            __tk_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__tk_l, __tk_r) = (&$left, &$right);
        if !(*__tk_l == *__tk_r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                __tk_l,
                __tk_r
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__tk_l, __tk_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__tk_l != *__tk_r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __tk_l
        );
    }};
}

/// Discards the current case (redrawing its inputs) when a precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies (`proptest::prop_oneof!`).
///
/// All alternatives must generate the same value type. Unlike
/// `proptest`, weights are not supported — every alternative is equally
/// likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}
