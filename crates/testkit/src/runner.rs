//! The seeded case runner behind [`proptest!`](crate::proptest).
//!
//! Each property derives a base seed from a stable FNV-1a hash of its
//! fully-qualified name (overridable with `BAAT_PROPTEST_SEED`), then
//! runs `cases` generated cases. There is no shrinking: a failure
//! reports the case number, the base seed, and a `Debug` dump of every
//! generated input, which together replay the exact counterexample.

use std::any::Any;

use baat_rng::{derive_seed, StdRng};

/// Per-property configuration (`proptest::prelude::ProptestConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases: enough to surface violations of the simulator's
    /// invariants while keeping the tier-1 gate fast.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The generated inputs did not satisfy a `prop_assume!` guard; the
    /// runner redraws without counting the case.
    Reject(String),
}

/// Outcome of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Max redraws for one case before concluding the `prop_assume!` filter
/// is unsatisfiable.
const MAX_REJECTS_PER_CASE: u32 = 128;

/// Stable 64-bit FNV-1a, used to turn a test name into a base seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got {raw:?}"),
    }
}

/// Runs one property. Called by the [`proptest!`](crate::proptest)
/// expansion — not public API.
#[doc(hidden)]
pub fn __run_property<F>(name: &str, cfg: &ProptestConfig, body: F)
where
    F: Fn(&mut StdRng) -> (Result<TestCaseResult, Box<dyn Any + Send>>, String),
{
    let cases =
        env_u64("BAAT_PROPTEST_CASES").map_or(cfg.cases, |n| u32::try_from(n).unwrap_or(u32::MAX));
    let base_seed = env_u64("BAAT_PROPTEST_SEED").unwrap_or_else(|| fnv1a(name.as_bytes()));

    for case in 0..u64::from(cases) {
        for attempt in 0..=u64::from(MAX_REJECTS_PER_CASE) {
            // One seed per (case, redraw attempt): replayable, and a
            // rejected draw never shifts the stream of later cases.
            let case_seed = derive_seed(base_seed, (case << 8) | attempt);
            let mut rng = StdRng::seed_from_u64(case_seed);
            let (outcome, inputs) = body(&mut rng);
            match outcome {
                Ok(Ok(())) => break,
                Ok(Err(TestCaseError::Reject(guard))) => {
                    assert!(
                        attempt < u64::from(MAX_REJECTS_PER_CASE),
                        "property {name}: prop_assume!({guard}) rejected \
                         {MAX_REJECTS_PER_CASE} consecutive draws at case {case} — \
                         the guard filters out (nearly) the whole domain"
                    );
                }
                Ok(Err(TestCaseError::Fail(message))) => {
                    panic!(
                        "{}",
                        report(name, base_seed, case, cases, &inputs, &message)
                    );
                }
                Err(panic_payload) => {
                    eprintln!(
                        "{}",
                        report(
                            name,
                            base_seed,
                            case,
                            cases,
                            &inputs,
                            "body panicked (below)"
                        )
                    );
                    std::panic::resume_unwind(panic_payload);
                }
            }
        }
    }
}

/// The shrink-free failure report.
fn report(
    name: &str,
    base_seed: u64,
    case: u64,
    cases: u32,
    inputs: &str,
    message: &str,
) -> String {
    format!(
        "property {name} failed at case {case}/{cases}\n  \
         inputs: {inputs}\n  \
         cause: {message}\n  \
         replay: BAAT_PROPTEST_SEED={base_seed:#x} cargo test {short}",
        short = name.rsplit("::").next().unwrap_or(name),
    )
}

/// Formats generated inputs for the failure report. Called by the macro
/// expansion — not public API.
#[doc(hidden)]
pub fn __format_inputs(pairs: &[(&str, &dyn core::fmt::Debug)]) -> String {
    let mut out = String::new();
    for (i, (label, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(label);
        out.push_str(" = ");
        out.push_str(&format!("{value:?}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // The base seed doubles as a replay token in failure reports, so
        // the hash must never change across releases.
        assert_eq!(fnv1a(b"baat"), 11_114_855_961_622_289_625); // computed once, pinned
    }

    #[test]
    fn format_inputs_is_readable() {
        let v = vec![1u8, 2];
        let s = __format_inputs(&[("a", &1.5f64), ("ops", &v)]);
        assert_eq!(s, "a = 1.5, ops = [1, 2]");
    }
}
