//! In-tree property-test and benchmark harness for the hermetic BAAT
//! workspace.
//!
//! The build environment has no crates.io access, so this crate replaces
//! the two dev-dependencies the workspace used to pull from the registry:
//!
//! * **`proptest`** — the [`proptest!`] macro here accepts the same
//!   `name(arg in strategy, ...)` test syntax, the same
//!   [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`] body macros,
//!   and the same `ProptestConfig::with_cases(n)` header. Case
//!   generation is seeded and deterministic (xoshiro256** from
//!   [`baat_rng`]); failures are reported **shrink-free**: instead of
//!   minimising the counterexample, the harness prints the generated
//!   inputs, the case number, and the base seed needed to replay the
//!   exact failure.
//! * **`criterion`** — the [`mod@bench`] module is a minimal wall-clock
//!   harness for `harness = false` bench targets: warm-up, timed
//!   batches, and a mean/min/max-per-iteration report.
//!
//! # Replaying failures
//!
//! Every property derives its case seeds from a stable hash of the test
//! name, so runs are reproducible by default. To pin the base seed
//! explicitly (e.g. replaying a failure seen on another machine):
//!
//! ```text
//! BAAT_PROPTEST_SEED=0x1234 cargo test -p baat-battery soc_always_bounded
//! ```
//!
//! `BAAT_PROPTEST_CASES=1024` scales every property's case count up (or
//! down) without touching source.
//!
//! # Examples
//!
//! ```
//! use baat_testkit::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
// The `proptest!` doc examples must show `#[test]` inside the macro —
// that is the required call syntax, not an attempt to run a unit test
// from a doctest.
#![allow(clippy::test_attr_in_doctest)]

pub mod bench;
mod macros;
mod runner;
pub mod strategy;

pub use runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use strategy::{Just, Strategy};

#[doc(hidden)]
pub use runner::{__format_inputs, __run_property};

/// `proptest::collection` compatibility: sized containers of generated
/// elements.
pub mod collection {
    pub use crate::strategy::vec;
}

/// `proptest::num` compatibility: numeric edge-case strategies.
pub mod num {
    /// Strategies over `f64`, including non-finite values.
    pub mod f64 {
        pub use crate::strategy::AnyF64;

        /// Any `f64` bit pattern: normals, subnormals, ±0, ±∞, NaN.
        pub const ANY: AnyF64 = AnyF64;
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestCaseResult,
    };
}
