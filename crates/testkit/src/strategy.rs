//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps generator state to a value:
//! ranges draw uniformly, tuples draw element-wise, [`vec()`] draws a
//! random length then that many elements, [`Just`] always yields its
//! value, and [`OneOf`] picks one of several alternatives. Unlike
//! `proptest`, strategies carry no shrinking machinery — the runner
//! reports the failing inputs and seed instead.

use core::ops::{Range, RangeInclusive};

use baat_rng::{SampleRange, StdRng};

/// A recipe for generating one value from a seeded generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Ranges are strategies wherever [`baat_rng`] can sample them
/// (`f64` and primitive integers, half-open and inclusive).
impl<T> Strategy for Range<T>
where
    T: Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Clone,
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A strategy that always yields a clone of its value (`proptest::prelude::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for storage in heterogeneous collections
/// (used by [`prop_oneof!`](crate::prop_oneof)).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice between alternative strategies of one value type.
pub struct OneOf<T> {
    alternatives: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over `alternatives`.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty.
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Self { alternatives }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let pick = rng.random_range(0..self.alternatives.len());
        self.alternatives[pick].generate(rng)
    }
}

/// An inclusive length window for [`vec()`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// A strategy yielding vectors of `element`-generated values with length
/// drawn from `size` (`proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Any `f64` bit pattern, with the interesting special values
/// over-represented (`proptest::num::f64::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyF64;

impl Strategy for AnyF64 {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        match rng.random_range(0..20u32) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            5 => f64::MIN_POSITIVE / 2.0, // subnormal
            // Any bit pattern: mostly huge/tiny magnitudes, occasionally
            // further NaNs — exactly the hostile end of the domain.
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b) = (0.0f64..1.0, 10u32..20).generate(&mut rng);
        assert!((0.0..1.0).contains(&a));
        assert!((10..20).contains(&b));
    }

    #[test]
    fn vec_respects_size_window() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(Just(42).generate(&mut rng), 42);
    }

    #[test]
    fn one_of_reaches_every_alternative() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat = OneOf::new(vec![boxed(Just(1u8)), boxed(Just(2)), boxed(Just(3))]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn any_f64_hits_special_values() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut saw_nan = false;
        let mut saw_finite = false;
        for _ in 0..1000 {
            let x = AnyF64.generate(&mut rng);
            saw_nan |= x.is_nan();
            saw_finite |= x.is_finite();
        }
        assert!(saw_nan && saw_finite);
    }
}
