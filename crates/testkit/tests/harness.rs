//! End-to-end tests of the property harness: the macro surface compiles
//! against real strategies, failing properties report inputs and seed,
//! and `prop_assume!` redraws instead of failing.

use baat_testkit::prelude::*;
use baat_testkit::{__run_property, ProptestConfig, TestCaseError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The macro handles multiple arguments, trailing commas, and tuple
    /// strategies.
    #[test]
    fn ranges_and_tuples(
        x in 0.0f64..10.0,
        pair in (0u8..4, 1u64..100),
        flags in baat_testkit::collection::vec(0u32..2, 1..8),
    ) {
        prop_assert!((0.0..10.0).contains(&x));
        prop_assert!(pair.0 < 4 && (1..100).contains(&pair.1));
        prop_assert!(!flags.is_empty() && flags.len() < 8);
        prop_assert_eq!(flags.iter().filter(|f| **f > 1).count(), 0);
    }

    /// `prop_assume!` filters without burning cases.
    #[test]
    fn assume_redraws(a in 0u32..100, b in 0u32..100) {
        prop_assume!(a < b);
        prop_assert!(a < b);
        prop_assert_ne!(b, 0);
    }

    /// `prop_oneof!` and `Just` cover enum-style strategies.
    #[test]
    fn oneof_picks_alternatives(v in prop_oneof![Just(1u8), Just(5), Just(9)]) {
        prop_assert!(v == 1 || v == 5 || v == 9);
    }

    /// Hostile floats flow through `num::f64::ANY`.
    #[test]
    fn any_f64_is_a_float(x in baat_testkit::num::f64::ANY) {
        prop_assert!(x.is_nan() || x.is_infinite() || x.is_finite());
    }
}

/// A property that always fails must panic with the input dump and the
/// replay seed in the message.
#[test]
fn failures_report_inputs_and_seed() {
    let err = std::panic::catch_unwind(|| {
        __run_property(
            "harness::always_fails",
            &ProptestConfig::with_cases(5),
            |rng| {
                let x = Strategy::generate(&(0u32..10), rng);
                let inputs = format!("x = {x}");
                (
                    Ok(Err(TestCaseError::Fail("forced failure".into()))),
                    inputs,
                )
            },
        );
    })
    .expect_err("property must fail");
    let message = err
        .downcast_ref::<String>()
        .expect("panic carries a String");
    assert!(message.contains("always_fails"), "{message}");
    assert!(message.contains("case 0/5"), "{message}");
    assert!(message.contains("x = "), "{message}");
    assert!(message.contains("BAAT_PROPTEST_SEED=0x"), "{message}");
    assert!(message.contains("forced failure"), "{message}");
}

/// An unsatisfiable `prop_assume!` must abort instead of spinning.
#[test]
fn unsatisfiable_assume_aborts() {
    let err = std::panic::catch_unwind(|| {
        __run_property(
            "harness::never_satisfied",
            &ProptestConfig::with_cases(5),
            |_rng| {
                (
                    Ok(Err(TestCaseError::Reject("false".into()))),
                    String::new(),
                )
            },
        );
    })
    .expect_err("runner must give up");
    let message = err
        .downcast_ref::<String>()
        .expect("panic carries a String");
    assert!(message.contains("rejected"), "{message}");
}

/// Two runs of the same property see identical generated inputs.
#[test]
fn case_generation_is_deterministic() {
    fn collect() -> Vec<u64> {
        let mut seen = Vec::new();
        // Channel the generated values out through a RefCell captured by
        // the body closure.
        let log = std::cell::RefCell::new(&mut seen);
        __run_property(
            "harness::deterministic_probe",
            &ProptestConfig::with_cases(16),
            |rng| {
                let v = Strategy::generate(&(0u64..1_000_000), rng);
                log.borrow_mut().push(v);
                (Ok(Ok(())), String::new())
            },
        );
        seen
    }
    let a = collect();
    let b = collect();
    assert_eq!(a, b);
    assert_eq!(a.len(), 16);
    assert!(a.windows(2).any(|w| w[0] != w[1]), "inputs should vary");
}
