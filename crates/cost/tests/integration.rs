//! Cost-model integration tests: the Figs 16/17 arithmetic end-to-end.

use baat_cost::{BatteryCostModel, TcoModel};
use baat_units::{Dollars, WattHours, Watts};

#[test]
fn fig16_arithmetic_reproduces_the_paper_saving() {
    // The paper's 26 % annual-depreciation saving corresponds to a
    // lifetime extension of 1/(1−0.26) ≈ 1.35×.
    let model = BatteryCostModel::prototype();
    let base_days = 365.0;
    let extended = base_days / (1.0 - 0.26);
    let saving = model.saving_fraction(base_days, extended).unwrap();
    assert!((saving - 0.26).abs() < 1e-9);
}

#[test]
fn expansion_is_monotone_in_lifetime_improvement() {
    let tco = TcoModel::prototype();
    let fleet = 1000;
    let headroom = Watts::from_kw(30.0);
    let per_server = Watts::new(130.0);
    let mut last = 0;
    for improved in [400.0, 500.0, 700.0, 1000.0] {
        let n = tco
            .expandable_servers(fleet, 365.0, improved, headroom, per_server)
            .unwrap();
        assert!(n >= last, "expansion must grow with battery life");
        last = n;
    }
    assert!(last > 0);
}

#[test]
fn tco_totals_decompose() {
    let battery =
        BatteryCostModel::from_energy_price(WattHours::new(840.0), Dollars::new(150.0)).unwrap();
    let tco = TcoModel::new(Dollars::new(180.0), battery).unwrap();
    let total = tco.annual_tco(10, 365.0).unwrap();
    let per_battery = tco.battery().annual_depreciation(365.0).unwrap();
    let expected = (180.0 + per_battery.as_f64()) * 10.0;
    assert!((total.as_f64() - expected).abs() < 1e-9);
}

#[test]
fn zero_headroom_means_zero_expansion_regardless_of_savings() {
    let tco = TcoModel::prototype();
    let n = tco
        .expandable_servers(1000, 200.0, 800.0, Watts::ZERO, Watts::new(130.0))
        .unwrap();
    assert_eq!(n, 0, "no solar budget, no servers");
}

#[test]
fn worse_batteries_cannot_fund_growth() {
    let tco = TcoModel::prototype();
    let n = tco
        .expandable_servers(1000, 500.0, 300.0, Watts::from_kw(100.0), Watts::new(130.0))
        .unwrap();
    assert_eq!(n, 0, "a lifetime regression saves nothing");
}
