//! Battery depreciation, ROI and datacenter TCO models for the BAAT
//! reproduction (paper §VI.D, Figs 16–17).
//!
//! * [`BatteryCostModel`] — straight-line battery depreciation over
//!   measured service life;
//! * [`TcoModel`] — fleet TCO and the scale-out-within-TCO analysis
//!   (savings from longer battery life fund more servers, capped by the
//!   solar power budget).
//!
//! # Examples
//!
//! ```
//! use baat_cost::BatteryCostModel;
//!
//! let model = BatteryCostModel::prototype();
//! // BAAT's 69 % lifetime extension cuts annual depreciation:
//! let saving = model.saving_fraction(365.0, 365.0 * 1.69)?;
//! assert!(saving > 0.25);
//! # Ok::<(), baat_cost::CostError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod battery_cost;
mod error;
mod tco;

pub use battery_cost::BatteryCostModel;
pub use error::CostError;
pub use tco::TcoModel;
