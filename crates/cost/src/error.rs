//! Error types for the cost models.

/// Invalid parameter passed to a cost model.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A parameter was out of its valid domain.
    InvalidParameter {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl core::fmt::Display for CostError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CostError::InvalidParameter { field, reason } => {
                write!(f, "invalid cost parameter `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for CostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let err = CostError::InvalidParameter {
            field: "price",
            reason: "negative".to_owned(),
        };
        assert!(err.to_string().contains("price"));
    }
}
