//! Datacenter TCO and the scale-out-within-TCO analysis (paper §VI.D,
//! Fig 17).
//!
//! "BAAT allows existing green datacenters to expand (scale-out) without
//! increasing the total cost of ownership (TCO) … the cost savings due to
//! improved battery life can actually be used to purchase more servers."
//! The number of servers that can be added is additionally capped by the
//! available solar power budget, which is why the Fig 17 curve tracks the
//! sunshine fraction.

use baat_battery::Chemistry;
use baat_units::{Dollars, Fraction, Watts};

use crate::battery_cost::BatteryCostModel;
use crate::error::CostError;

/// Per-server annualized cost plus the battery cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoModel {
    server_annual: Dollars,
    battery: BatteryCostModel,
}

impl TcoModel {
    /// Creates a model from the annualized per-server cost (capex
    /// amortization + opex share) and the battery cost model.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if `server_annual` is not
    /// positive and finite.
    pub fn new(server_annual: Dollars, battery: BatteryCostModel) -> Result<Self, CostError> {
        if !(server_annual.as_f64().is_finite() && server_annual.as_f64() > 0.0) {
            return Err(CostError::InvalidParameter {
                field: "server_annual",
                reason: format!("must be positive and finite, got {server_annual}"),
            });
        }
        Ok(Self {
            server_annual,
            battery,
        })
    }

    /// The prototype economics: commodity servers amortized to $180/yr,
    /// prototype lead-acid batteries.
    pub fn prototype() -> Self {
        Self::prototype_for(Chemistry::LeadAcid)
    }

    /// Prototype economics with the battery bay priced for `chemistry`
    /// (same $180/yr servers; see [`BatteryCostModel::for_chemistry`]).
    pub fn prototype_for(chemistry: Chemistry) -> Self {
        Self::new(
            Dollars::new(180.0),
            BatteryCostModel::for_chemistry(chemistry),
        )
        .expect("static values are valid")
    }

    /// Annualized per-server cost.
    pub fn server_annual(&self) -> Dollars {
        self.server_annual
    }

    /// The battery cost model.
    pub fn battery(&self) -> &BatteryCostModel {
        &self.battery
    }

    /// Annual TCO of a fleet of `servers` whose batteries live
    /// `battery_lifetime_days`.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] on an invalid lifetime.
    pub fn annual_tco(
        &self,
        servers: usize,
        battery_lifetime_days: f64,
    ) -> Result<Dollars, CostError> {
        let per_battery = self.battery.annual_depreciation(battery_lifetime_days)?;
        Ok((self.server_annual + per_battery) * servers as f64)
    }

    /// Servers that can be *added* to a `servers`-node fleet without
    /// raising annual TCO, funded by the battery-lifetime improvement
    /// from `baseline_days` to `improved_days`, and capped by the solar
    /// power budget.
    ///
    /// `solar_headroom` is the spare solar power available beyond the
    /// current fleet's demand; `per_server` the added server's power
    /// draw. The budget cap reproduces the paper's note that "the actual
    /// server that can be installed depends on the available solar power
    /// budget".
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] on invalid lifetimes.
    pub fn expandable_servers(
        &self,
        servers: usize,
        baseline_days: f64,
        improved_days: f64,
        solar_headroom: Watts,
        per_server: Watts,
    ) -> Result<usize, CostError> {
        let base = self.battery.annual_depreciation(baseline_days)?;
        let improved = self.battery.annual_depreciation(improved_days)?;
        let saving_total = (base.as_f64() - improved.as_f64()) * servers as f64;
        if saving_total <= 0.0 {
            return Ok(0);
        }
        // Each added server costs its annualized price plus its own
        // battery at the improved lifetime.
        let marginal = self.server_annual.as_f64() + improved.as_f64();
        let funded = (saving_total / marginal).floor() as usize;
        let budget_cap = if per_server.as_f64() > 0.0 {
            (solar_headroom.as_f64().max(0.0) / per_server.as_f64()).floor() as usize
        } else {
            usize::MAX
        };
        Ok(funded.min(budget_cap))
    }

    /// Expansion as a fraction of the existing fleet (the Fig 17 y-axis).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] on invalid lifetimes.
    pub fn expansion_ratio(
        &self,
        servers: usize,
        baseline_days: f64,
        improved_days: f64,
        solar_headroom: Watts,
        per_server: Watts,
    ) -> Result<Fraction, CostError> {
        let added = self.expandable_servers(
            servers,
            baseline_days,
            improved_days,
            solar_headroom,
            per_server,
        )?;
        Ok(Fraction::saturating(added as f64 / servers.max(1) as f64))
    }
}

impl Default for TcoModel {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TcoModel {
        TcoModel::prototype()
    }

    #[test]
    fn tco_scales_with_fleet_size() {
        let m = model();
        let one = m.annual_tco(1, 365.0).unwrap();
        let ten = m.annual_tco(10, 365.0).unwrap();
        assert!((ten.as_f64() - 10.0 * one.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn longer_battery_life_lowers_tco() {
        let m = model();
        let short = m.annual_tco(6, 365.0).unwrap();
        let long = m.annual_tco(6, 700.0).unwrap();
        assert!(long < short);
    }

    #[test]
    fn savings_fund_expansion_with_ample_solar() {
        let m = model();
        // Large fleet so integer flooring doesn't hide the effect.
        let added = m
            .expandable_servers(1000, 365.0, 700.0, Watts::from_kw(50.0), Watts::new(150.0))
            .unwrap();
        assert!(added > 0, "improved batteries must fund servers");
    }

    #[test]
    fn solar_budget_caps_expansion() {
        let m = model();
        let uncapped = m
            .expandable_servers(1000, 365.0, 700.0, Watts::from_kw(50.0), Watts::new(150.0))
            .unwrap();
        let capped = m
            .expandable_servers(1000, 365.0, 700.0, Watts::new(300.0), Watts::new(150.0))
            .unwrap();
        assert!(capped <= 2);
        assert!(capped < uncapped);
    }

    #[test]
    fn no_improvement_no_expansion() {
        let m = model();
        let added = m
            .expandable_servers(100, 365.0, 365.0, Watts::from_kw(10.0), Watts::new(150.0))
            .unwrap();
        assert_eq!(added, 0);
    }

    #[test]
    fn li_ion_tco_exceeds_lead_acid_at_equal_lifetime() {
        let pb = TcoModel::prototype_for(Chemistry::LeadAcid);
        let li = TcoModel::prototype_for(Chemistry::LiIon);
        assert_eq!(pb, TcoModel::prototype());
        let pb_tco = pb.annual_tco(6, 365.0).unwrap();
        let li_tco = li.annual_tco(6, 365.0).unwrap();
        assert!(
            li_tco > pb_tco,
            "li-ion {li_tco} must cost more than lead-acid {pb_tco} at the same life"
        );
    }

    #[test]
    fn expansion_ratio_is_fractional() {
        let m = model();
        let ratio = m
            .expansion_ratio(1000, 365.0, 700.0, Watts::from_kw(50.0), Watts::new(150.0))
            .unwrap();
        assert!(ratio.value() > 0.0 && ratio.value() < 1.0);
    }
}
