//! Battery depreciation and replacement cost (paper §VI.D).
//!
//! "Increasing battery lifetime can greatly increase the return on
//! investment (ROI) due to the reduced battery depreciation cost."
//! Depreciation is straight-line over the battery's service life: a unit
//! that lasts twice as long costs half as much per year.

use baat_units::{Dollars, WattHours};

use crate::error::CostError;

/// Cost model for one battery unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryCostModel {
    unit_price: Dollars,
}

impl BatteryCostModel {
    /// Creates a model from the unit purchase price.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if the price is not
    /// positive and finite.
    pub fn new(unit_price: Dollars) -> Result<Self, CostError> {
        if !(unit_price.as_f64().is_finite() && unit_price.as_f64() > 0.0) {
            return Err(CostError::InvalidParameter {
                field: "unit_price",
                reason: format!("must be positive and finite, got {unit_price}"),
            });
        }
        Ok(Self { unit_price })
    }

    /// Creates a model from stored-energy pricing (deep-cycle lead-acid
    /// runs roughly $150/kWh).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if either argument is not
    /// positive and finite.
    pub fn from_energy_price(
        capacity: WattHours,
        price_per_kwh: Dollars,
    ) -> Result<Self, CostError> {
        if !(capacity.as_f64().is_finite() && capacity.as_f64() > 0.0) {
            return Err(CostError::InvalidParameter {
                field: "capacity",
                reason: format!("must be positive and finite, got {capacity}"),
            });
        }
        Self::new(price_per_kwh * capacity.as_kwh())
    }

    /// The prototype's 12 V 35 Ah unit at $150/kWh ≈ $63.
    pub fn prototype() -> Self {
        Self::from_energy_price(WattHours::new(420.0), Dollars::new(150.0))
            .expect("static values are valid")
    }

    /// Unit purchase price.
    pub fn unit_price(&self) -> Dollars {
        self.unit_price
    }

    /// Annual depreciation for a battery that lives `lifetime_days`.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if the lifetime is not
    /// positive and finite.
    pub fn annual_depreciation(&self, lifetime_days: f64) -> Result<Dollars, CostError> {
        if !(lifetime_days.is_finite() && lifetime_days > 0.0) {
            return Err(CostError::InvalidParameter {
                field: "lifetime_days",
                reason: format!("must be positive and finite, got {lifetime_days}"),
            });
        }
        Ok(self.unit_price.per_year(lifetime_days / 365.0))
    }

    /// Relative annual-cost saving of extending battery life from
    /// `baseline_days` to `improved_days` (the paper's "26 % cost
    /// reduction" arithmetic).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if either lifetime is
    /// invalid.
    pub fn saving_fraction(
        &self,
        baseline_days: f64,
        improved_days: f64,
    ) -> Result<f64, CostError> {
        let base = self.annual_depreciation(baseline_days)?;
        let improved = self.annual_depreciation(improved_days)?;
        Ok((base.as_f64() - improved.as_f64()) / base.as_f64())
    }
}

impl Default for BatteryCostModel {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_price_is_plausible() {
        let m = BatteryCostModel::prototype();
        assert!((m.unit_price().as_f64() - 63.0).abs() < 1.0);
    }

    #[test]
    fn depreciation_is_straight_line() {
        let m = BatteryCostModel::new(Dollars::new(100.0)).unwrap();
        let annual = m.annual_depreciation(730.0).unwrap();
        assert!((annual.as_f64() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn longer_life_costs_less_per_year() {
        let m = BatteryCostModel::prototype();
        let short = m.annual_depreciation(365.0).unwrap();
        let long = m.annual_depreciation(365.0 * 1.69).unwrap();
        assert!(long < short);
    }

    #[test]
    fn sixty_nine_percent_longer_life_saves_forty_percent() {
        // 1/1.69 ≈ 0.59: the paper's 69 % lifetime gain caps the possible
        // depreciation saving at ~41 %; the measured 26 % (Fig 16) also
        // reflects threshold tuning costs.
        let m = BatteryCostModel::prototype();
        let saving = m.saving_fraction(365.0, 365.0 * 1.69).unwrap();
        assert!((saving - (1.0 - 1.0 / 1.69)).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(BatteryCostModel::new(Dollars::ZERO).is_err());
        let m = BatteryCostModel::prototype();
        assert!(m.annual_depreciation(0.0).is_err());
        assert!(m.annual_depreciation(f64::NAN).is_err());
    }
}
