//! Battery depreciation and replacement cost (paper §VI.D).
//!
//! "Increasing battery lifetime can greatly increase the return on
//! investment (ROI) due to the reduced battery depreciation cost."
//! Depreciation is straight-line over the battery's service life: a unit
//! that lasts twice as long costs half as much per year.

use baat_battery::Chemistry;
use baat_units::{Dollars, WattHours};

use crate::error::CostError;

/// Deep-cycle lead-acid stored-energy price, $/kWh (the paper's
/// prototype economics).
const LEAD_ACID_PRICE_PER_KWH: f64 = 150.0;
/// LFP li-ion stored-energy price, $/kWh — roughly twice lead-acid at
/// datacenter-UPS volumes.
const LI_ION_PRICE_PER_KWH: f64 = 300.0;
/// Stored energy of the prototype's lead-acid bay (12 V × 35 Ah).
const LEAD_ACID_PROTOTYPE_WH: f64 = 420.0;
/// Stored energy of the li-ion prototype bay (12.8 V × 35 Ah).
const LI_ION_PROTOTYPE_WH: f64 = 448.0;

/// Cost model for one battery unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryCostModel {
    unit_price: Dollars,
}

impl BatteryCostModel {
    /// Creates a model from the unit purchase price.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if the price is not
    /// positive and finite.
    pub fn new(unit_price: Dollars) -> Result<Self, CostError> {
        if !(unit_price.as_f64().is_finite() && unit_price.as_f64() > 0.0) {
            return Err(CostError::InvalidParameter {
                field: "unit_price",
                reason: format!("must be positive and finite, got {unit_price}"),
            });
        }
        Ok(Self { unit_price })
    }

    /// Creates a model from stored-energy pricing (deep-cycle lead-acid
    /// runs roughly $150/kWh).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if either argument is not
    /// positive and finite.
    pub fn from_energy_price(
        capacity: WattHours,
        price_per_kwh: Dollars,
    ) -> Result<Self, CostError> {
        if !(capacity.as_f64().is_finite() && capacity.as_f64() > 0.0) {
            return Err(CostError::InvalidParameter {
                field: "capacity",
                reason: format!("must be positive and finite, got {capacity}"),
            });
        }
        Self::new(price_per_kwh * capacity.as_kwh())
    }

    /// The prototype's 12 V 35 Ah lead-acid unit at $150/kWh ≈ $63.
    pub fn prototype() -> Self {
        Self::for_chemistry(Chemistry::LeadAcid)
    }

    /// Stored-energy price for a chemistry, $/kWh. Lead-acid keeps the
    /// historical $150/kWh default; li-ion runs about twice that.
    pub fn price_per_kwh(chemistry: Chemistry) -> Dollars {
        match chemistry {
            Chemistry::LeadAcid => Dollars::new(LEAD_ACID_PRICE_PER_KWH),
            Chemistry::LiIon => Dollars::new(LI_ION_PRICE_PER_KWH),
        }
    }

    /// The prototype-sized unit for a chemistry at that chemistry's
    /// stored-energy price: lead-acid 420 Wh ≈ $63, li-ion 448 Wh ≈ $134.
    pub fn for_chemistry(chemistry: Chemistry) -> Self {
        let capacity = match chemistry {
            Chemistry::LeadAcid => WattHours::new(LEAD_ACID_PROTOTYPE_WH),
            Chemistry::LiIon => WattHours::new(LI_ION_PROTOTYPE_WH),
        };
        Self::from_energy_price(capacity, Self::price_per_kwh(chemistry))
            .expect("static values are valid")
    }

    /// Unit purchase price.
    pub fn unit_price(&self) -> Dollars {
        self.unit_price
    }

    /// Annual depreciation for a battery that lives `lifetime_days`.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if the lifetime is not
    /// positive and finite.
    pub fn annual_depreciation(&self, lifetime_days: f64) -> Result<Dollars, CostError> {
        if !(lifetime_days.is_finite() && lifetime_days > 0.0) {
            return Err(CostError::InvalidParameter {
                field: "lifetime_days",
                reason: format!("must be positive and finite, got {lifetime_days}"),
            });
        }
        Ok(self.unit_price.per_year(lifetime_days / 365.0))
    }

    /// Relative annual-cost saving of extending battery life from
    /// `baseline_days` to `improved_days` (the paper's "26 % cost
    /// reduction" arithmetic).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] if either lifetime is
    /// invalid.
    pub fn saving_fraction(
        &self,
        baseline_days: f64,
        improved_days: f64,
    ) -> Result<f64, CostError> {
        let base = self.annual_depreciation(baseline_days)?;
        let improved = self.annual_depreciation(improved_days)?;
        Ok((base.as_f64() - improved.as_f64()) / base.as_f64())
    }
}

impl Default for BatteryCostModel {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_price_is_plausible() {
        let m = BatteryCostModel::prototype();
        assert!((m.unit_price().as_f64() - 63.0).abs() < 1.0);
    }

    #[test]
    fn depreciation_is_straight_line() {
        let m = BatteryCostModel::new(Dollars::new(100.0)).unwrap();
        let annual = m.annual_depreciation(730.0).unwrap();
        assert!((annual.as_f64() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn longer_life_costs_less_per_year() {
        let m = BatteryCostModel::prototype();
        let short = m.annual_depreciation(365.0).unwrap();
        let long = m.annual_depreciation(365.0 * 1.69).unwrap();
        assert!(long < short);
    }

    #[test]
    fn sixty_nine_percent_longer_life_saves_forty_percent() {
        // 1/1.69 ≈ 0.59: the paper's 69 % lifetime gain caps the possible
        // depreciation saving at ~41 %; the measured 26 % (Fig 16) also
        // reflects threshold tuning costs.
        let m = BatteryCostModel::prototype();
        let saving = m.saving_fraction(365.0, 365.0 * 1.69).unwrap();
        assert!((saving - (1.0 - 1.0 / 1.69)).abs() < 1e-9);
    }

    #[test]
    fn li_ion_unit_costs_about_twice_lead_acid() {
        let pb = BatteryCostModel::for_chemistry(Chemistry::LeadAcid);
        let li = BatteryCostModel::for_chemistry(Chemistry::LiIon);
        assert_eq!(pb, BatteryCostModel::prototype());
        assert!((li.unit_price().as_f64() - 134.4).abs() < 0.1);
        let ratio = li.unit_price().as_f64() / pb.unit_price().as_f64();
        assert!((1.9..=2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_kwh_prices_cover_all_chemistries() {
        for chem in Chemistry::ALL {
            let price = BatteryCostModel::price_per_kwh(chem);
            assert!(price.as_f64() > 0.0, "{chem} has no price");
        }
        assert!(
            BatteryCostModel::price_per_kwh(Chemistry::LiIon)
                > BatteryCostModel::price_per_kwh(Chemistry::LeadAcid)
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(BatteryCostModel::new(Dollars::ZERO).is_err());
        let m = BatteryCostModel::prototype();
        assert!(m.annual_depreciation(0.0).is_err());
        assert!(m.annual_depreciation(f64::NAN).is_err());
    }
}
