//! In-tree scoped worker pool for deterministic fan-out/merge.
//!
//! The workspace is hermetic (no rayon), so this crate provides the one
//! primitive the engine and the bench runner need: run `N` independent
//! tasks on a fixed set of persistent workers and hand the results back
//! **in task-index order**. Determinism is the caller's contract — a
//! task may only touch state disjoint from every other task's — and the
//! pool's contract is that the returned `Vec` is ordered by task index,
//! so a sequential merge over it reproduces the single-threaded fold
//! order bit-for-bit.
//!
//! Design, sized for per-simulation-step batches (tens of microseconds
//! of work, dispatched tens of thousands of times per simulated day):
//!
//! * **Persistent workers.** [`ExecPool::new`] spawns `threads - 1`
//!   workers once; [`ExecPool::run`] never spawns. (A scoped-thread
//!   pool would pay ~10 µs of spawn latency per worker per batch —
//!   more than the batch itself.)
//! * **Epoch dispatch with a spin fast-path.** Each batch bumps an
//!   epoch. Idle workers spin briefly on the epoch atomic before
//!   sleeping on a condvar, so back-to-back batches (the step loop)
//!   avoid futex round-trips.
//! * **Mutex-guarded task claiming.** Workers claim task indices under
//!   the batch mutex. Batches here are coarse (one task per shard, a
//!   handful of shards), so a lock per claim is noise — and it makes
//!   stale execution impossible by construction: a worker can only
//!   observe the current batch's job pointer.
//! * **Caller participation.** The calling thread claims tasks too,
//!   then waits on a completion counter; `threads = N` means `N` CPUs
//!   are busy, not `N + 1` threads fighting over `N` cores.
//!
//! A panicking task does not poison the pool: the panic is caught,
//! the batch completes, and the payload is re-thrown on the caller.
//!
//! ```
//! use baat_exec::ExecPool;
//!
//! let pool = ExecPool::new(4);
//! let squares = pool.run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! # Metering
//!
//! [`ExecPool::set_metering`] turns on per-thread execution counters:
//! busy nanoseconds and task counts per thread (index 0 is the caller),
//! batch counts, batch wall time, and the caller's post-drain *merge
//! wait* — the time the calling thread spends waiting for stragglers
//! after the task cursor drains, which is exactly the serialization
//! cost a sharded stage pays over its slowest shard. Metering is off by
//! default and its disabled cost is a single relaxed atomic load per
//! batch: no clock reads, no allocation. Counters are relaxed atomics
//! read after the fact — they never influence task scheduling.

#![deny(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Iterations an idle worker spins on the epoch atomic before sleeping
/// on the condvar. Sized to cover the inter-batch gap of a hot step
/// loop (~1 µs) without burning a core when the pool is actually idle.
const SPIN_BUDGET: u32 = 4_096;

/// Lifetime-erased reference to the current batch's task closure. The
/// `'static` is a lie told once, inside [`ExecPool::run`]: the pointee
/// lives on `run`'s stack, and the erasure is sound because a worker
/// only obtains a `Job` under the batch mutex in the same critical
/// section that claims a task index — so it is always the *current*
/// batch's closure — and `run` blocks on the completion counter until
/// every claimed task has executed before letting the closure drop.
#[derive(Clone, Copy)]
struct Job(&'static (dyn Fn(usize) + Sync));

/// The current batch, guarded by one mutex: workers read the job and
/// claim indices only under this lock, so a worker can never run a
/// stale job against a new batch's cursor.
struct Batch {
    /// Monotonic batch id; bumped by every [`ExecPool::run`].
    epoch: u64,
    /// The batch's task closure; `None` once the cursor drains.
    job: Option<Job>,
    /// Next unclaimed task index.
    cursor: usize,
    /// Total tasks in the batch.
    tasks: usize,
}

/// One thread's execution counters; all relaxed, written only by the
/// owning thread while metering is on.
#[derive(Default)]
struct ThreadMeter {
    busy_ns: AtomicU64,
    tasks: AtomicU64,
}

struct Shared {
    batch: Mutex<Batch>,
    work_cv: Condvar,
    /// Mirror of `batch.epoch` readable without the mutex — the
    /// workers' spin fast-path.
    epoch: AtomicU64,
    /// Tasks completed in the current batch (claimed *and* executed).
    finished: AtomicUsize,
    shutdown: AtomicBool,
    /// Metering switch; the whole disabled cost is one relaxed load of
    /// this flag per batch (workers re-check it once per task).
    meter: AtomicBool,
    /// Per-thread counters, index 0 = caller, 1.. = workers. Sized at
    /// construction so the metered path never allocates either.
    meters: Vec<ThreadMeter>,
    /// Batches dispatched while metering was on.
    batches: AtomicU64,
    /// Sum of metered batch wall times (dispatch to last task done).
    wall_ns: AtomicU64,
    /// Cumulative caller post-drain wait (merge wait) across metered
    /// batches, plus the most recent batch's wait on its own — the
    /// engine reads the latter right after a sharded stage returns to
    /// attribute the wait to that stage.
    caller_wait_ns: AtomicU64,
    last_caller_wait_ns: AtomicU64,
}

/// One thread's share of metered pool work. Index 0 of
/// [`PoolStats::threads_stats`] is the calling thread; workers follow
/// in spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadStats {
    /// Nanoseconds this thread spent executing tasks.
    pub busy_ns: u64,
    /// Tasks this thread executed.
    pub tasks: u64,
}

/// Snapshot of pool execution counters since metering was enabled.
/// Values are relaxed-atomic reads: exact once the pool is quiescent
/// (no `run` in flight), approximate during one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Total threads batches run on (workers + caller).
    pub threads: usize,
    /// Batches dispatched while metering was on.
    pub batches: u64,
    /// Sum of metered batch wall times, dispatch to last task done.
    pub wall_ns: u64,
    /// Cumulative caller post-drain (merge) wait across metered batches.
    pub caller_wait_ns: u64,
    /// Per-thread busy time and task counts; index 0 is the caller.
    pub threads_stats: Vec<ThreadStats>,
}

/// A fixed-size worker pool; see the crate docs for the design.
pub struct ExecPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes batches: one `run` at a time, so the single shared
    /// batch slot and completion counter are never shared between two
    /// concurrent callers (e.g. cloned simulations holding one pool).
    run_lock: Mutex<()>,
    threads: usize,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ExecPool {
    /// Creates a pool that runs batches on `threads` OS threads total:
    /// `threads - 1` persistent workers plus the calling thread.
    /// `threads` is clamped to at least 1; a 1-thread pool spawns
    /// nothing and [`run`](Self::run) degenerates to a sequential loop.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            batch: Mutex::new(Batch {
                epoch: 0,
                job: None,
                cursor: 0,
                tasks: 0,
            }),
            work_cv: Condvar::new(),
            epoch: AtomicU64::new(0),
            finished: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            meter: AtomicBool::new(false),
            meters: (0..threads).map(|_| ThreadMeter::default()).collect(),
            batches: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
            caller_wait_ns: AtomicU64::new(0),
            last_caller_wait_ns: AtomicU64::new(0),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("baat-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            run_lock: Mutex::new(()),
            threads,
        }
    }

    /// Total threads batches run on (workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Turns execution metering on or off. Off by default; toggling
    /// does not reset counters, so a consumer that enables metering
    /// once at startup reads monotonic totals.
    pub fn set_metering(&self, on: bool) {
        self.shared.meter.store(on, Ordering::Relaxed);
    }

    /// Whether execution metering is currently on.
    pub fn metering(&self) -> bool {
        self.shared.meter.load(Ordering::Relaxed)
    }

    /// The most recent metered batch's caller merge wait in
    /// nanoseconds: how long the calling thread idled behind its
    /// slowest worker after the task cursor drained. Zero for inline
    /// (single-thread or single-task) batches and while metering is
    /// off. Read it immediately after [`run`](Self::run) to attribute
    /// the wait to the stage that dispatched the batch.
    pub fn last_caller_wait_ns(&self) -> u64 {
        self.shared.last_caller_wait_ns.load(Ordering::Relaxed)
    }

    /// Snapshot of the pool's metered counters. Allocation happens
    /// here, on the cold read path — never inside [`run`](Self::run).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            batches: self.shared.batches.load(Ordering::Relaxed),
            wall_ns: self.shared.wall_ns.load(Ordering::Relaxed),
            caller_wait_ns: self.shared.caller_wait_ns.load(Ordering::Relaxed),
            threads_stats: self
                .shared
                .meters
                .iter()
                .map(|m| ThreadStats {
                    busy_ns: m.busy_ns.load(Ordering::Relaxed),
                    tasks: m.tasks.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Runs `f(0..tasks)` across the pool and returns the results in
    /// task-index order. Blocks until every task completed. If any task
    /// panicked, the first panic (by task index) is re-thrown here
    /// after the batch drains, leaving the pool reusable.
    pub fn run<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let meter = self.shared.meter.load(Ordering::Relaxed);
        if self.workers.is_empty() || tasks == 1 {
            if !meter {
                return (0..tasks).map(f).collect();
            }
            // Inline batch: all work is caller busy time, no merge wait.
            let started = Instant::now();
            let out = (0..tasks).map(f).collect();
            let elapsed = started.elapsed().as_nanos() as u64;
            self.shared.batches.fetch_add(1, Ordering::Relaxed);
            self.shared.wall_ns.fetch_add(elapsed, Ordering::Relaxed);
            self.shared.meters[0]
                .busy_ns
                .fetch_add(elapsed, Ordering::Relaxed);
            self.shared.meters[0]
                .tasks
                .fetch_add(tasks as u64, Ordering::Relaxed);
            self.shared.last_caller_wait_ns.store(0, Ordering::Relaxed);
            return out;
        }
        // One slot per task; each index is claimed exactly once, so
        // every lock below is uncontended.
        let slots: Vec<Mutex<Option<std::thread::Result<T>>>> =
            (0..tasks).map(|_| Mutex::new(None)).collect();
        let call = |i: usize| {
            let result = catch_unwind(AssertUnwindSafe(|| f(i)));
            *slots[i].lock().expect("slot lock") = Some(result);
        };
        // SAFETY: erases the closure's stack lifetime so workers can
        // hold the pointer. The pointee stays alive and unmoved until
        // this function returns, and the completion-counter wait below
        // guarantees no worker dereferences it after that.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&call)
        });

        let guard = self.run_lock.lock().expect("run lock");
        let batch_started = meter.then(Instant::now);
        self.shared.finished.store(0, Ordering::Relaxed);
        {
            let mut batch = self.shared.batch.lock().expect("batch lock");
            batch.epoch += 1;
            batch.job = Some(job);
            batch.cursor = 0;
            batch.tasks = tasks;
            self.shared.epoch.store(batch.epoch, Ordering::Release);
        }
        self.shared.work_cv.notify_all();

        // Participate until the cursor drains, then clear the job so
        // late-waking workers see an exhausted batch.
        let mut caller_busy_ns = 0u64;
        let mut caller_tasks = 0u64;
        loop {
            let claimed = {
                let mut batch = self.shared.batch.lock().expect("batch lock");
                if batch.cursor >= batch.tasks {
                    batch.job = None;
                    None
                } else {
                    let i = batch.cursor;
                    batch.cursor += 1;
                    Some(i)
                }
            };
            let Some(i) = claimed else { break };
            let task_started = meter.then(Instant::now);
            call(i);
            if let Some(at) = task_started {
                caller_busy_ns += at.elapsed().as_nanos() as u64;
                caller_tasks += 1;
            }
            self.shared.finished.fetch_add(1, Ordering::Release);
        }
        // Wait for tasks still running on workers. Every claimed index
        // increments `finished` (panics are caught), so this terminates.
        // Under metering this wait is the batch's *merge wait*: the
        // caller idling behind its slowest worker.
        let wait_started = meter.then(Instant::now);
        let mut spins = 0u32;
        while self.shared.finished.load(Ordering::Acquire) < tasks {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(SPIN_BUDGET) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        if let Some(batch_at) = batch_started {
            let wait_ns = wait_started
                .map(|at| at.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            self.shared.batches.fetch_add(1, Ordering::Relaxed);
            self.shared
                .wall_ns
                .fetch_add(batch_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.shared
                .caller_wait_ns
                .fetch_add(wait_ns, Ordering::Relaxed);
            self.shared
                .last_caller_wait_ns
                .store(wait_ns, Ordering::Relaxed);
            self.shared.meters[0]
                .busy_ns
                .fetch_add(caller_busy_ns, Ordering::Relaxed);
            self.shared.meters[0]
                .tasks
                .fetch_add(caller_tasks, Ordering::Relaxed);
        }
        drop(guard);

        let mut out = Vec::with_capacity(tasks);
        let mut panicked = None;
        for slot in slots {
            match slot.into_inner().expect("slot lock").expect("task ran") {
                Ok(v) => out.push(v),
                Err(payload) => {
                    panicked.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panicked {
            resume_unwind(payload);
        }
        out
    }

    /// Consumes `items`, applying `f` to each across the pool; results
    /// come back in item order. The batched equivalent of
    /// `items.into_iter().map(f).collect()`.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        self.run(cells.len(), |i| {
            let item = cells[i]
                .lock()
                .expect("item lock")
                .take()
                .expect("each index is claimed exactly once");
            f(item)
        })
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        // Fast path: spin briefly for the next batch before sleeping.
        let mut spins = 0u32;
        while shared.epoch.load(Ordering::Acquire) == seen
            && !shared.shutdown.load(Ordering::Relaxed)
        {
            spins += 1;
            if spins >= SPIN_BUDGET {
                break;
            }
            std::hint::spin_loop();
        }
        let mut batch = shared.batch.lock().expect("batch lock");
        while batch.epoch == seen {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            batch = shared.work_cv.wait(batch).expect("batch lock");
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Claim and run tasks. The job is re-read under the lock on
        // every claim, so this loop seamlessly rolls into a newer
        // batch (and never runs a stale job against it).
        loop {
            seen = batch.epoch;
            let Some(job) = batch.job else { break };
            if batch.cursor >= batch.tasks {
                break;
            }
            let i = batch.cursor;
            batch.cursor += 1;
            drop(batch);
            let task_started = shared.meter.load(Ordering::Relaxed).then(Instant::now);
            (job.0)(i);
            if let Some(at) = task_started {
                let meter = &shared.meters[index];
                meter
                    .busy_ns
                    .fetch_add(at.elapsed().as_nanos() as u64, Ordering::Relaxed);
                meter.tasks.fetch_add(1, Ordering::Relaxed);
            }
            shared.finished.fetch_add(1, Ordering::Release);
            batch = shared.batch.lock().expect("batch lock");
        }
        drop(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = ExecPool::new(4);
        let out = pool.run(64, |i| i * 3);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ExecPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        assert_eq!(pool.run(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_tasks_is_empty() {
        let pool = ExecPool::new(3);
        assert!(pool.run(0, |i| i).is_empty());
    }

    #[test]
    fn repeated_batches_reuse_the_same_workers() {
        let pool = ExecPool::new(4);
        for round in 0..200 {
            let out = pool.run(9, move |i| i + round);
            assert_eq!(out, (round..round + 9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = ExecPool::new(8);
        let counts: Vec<AtomicU32> = (0..1_000).map(|_| AtomicU32::new(0)).collect();
        pool.run(counts.len(), |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn tasks_see_disjoint_mutable_state() {
        let pool = ExecPool::new(4);
        let mut data = vec![0u64; 40];
        let chunks: Vec<Mutex<Option<&mut [u64]>>> =
            data.chunks_mut(10).map(|c| Mutex::new(Some(c))).collect();
        pool.run(chunks.len(), |s| {
            let mut guard = chunks[s].lock().unwrap();
            for (k, v) in guard.as_mut().unwrap().iter_mut().enumerate() {
                *v = (s * 10 + k) as u64;
            }
        });
        drop(chunks);
        assert_eq!(data, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn map_preserves_item_order() {
        let pool = ExecPool::new(3);
        let items: Vec<String> = (0..17).map(|i| format!("item-{i}")).collect();
        let lens = pool.map(items, |s| s.len());
        assert_eq!(lens.len(), 17);
        assert_eq!(lens[0], 6);
        assert_eq!(lens[16], 7);
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let pool = ExecPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                assert!(i != 5, "task five exploded");
                i
            })
        }));
        assert!(result.is_err());
        // The pool is still usable after the panic.
        assert_eq!(pool.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn oversubscribed_batches_complete() {
        let pool = ExecPool::new(2);
        let out = pool.run(333, |i| i as u64 * 2);
        assert_eq!(out.len(), 333);
        assert_eq!(out[332], 664);
    }

    #[test]
    fn metering_is_off_by_default_and_records_nothing() {
        let pool = ExecPool::new(4);
        assert!(!pool.metering());
        pool.run(16, |i| i);
        let stats = pool.stats();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.wall_ns, 0);
        assert_eq!(stats.caller_wait_ns, 0);
        assert_eq!(stats.threads_stats.len(), 4);
        for t in &stats.threads_stats {
            assert_eq!(t.tasks, 0);
            assert_eq!(t.busy_ns, 0);
        }
    }

    #[test]
    fn metered_batches_account_every_task_exactly_once() {
        let pool = ExecPool::new(4);
        pool.set_metering(true);
        assert!(pool.metering());
        for _ in 0..10 {
            pool.run(32, |i| {
                std::hint::black_box(i);
            });
        }
        let stats = pool.stats();
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.batches, 10);
        let total_tasks: u64 = stats.threads_stats.iter().map(|t| t.tasks).sum();
        assert_eq!(total_tasks, 320, "every task attributed to one thread");
        assert!(stats.wall_ns > 0);
    }

    #[test]
    fn inline_batches_meter_as_pure_caller_work() {
        let pool = ExecPool::new(1);
        pool.set_metering(true);
        pool.run(7, |i| {
            std::hint::black_box(i);
        });
        let stats = pool.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.threads_stats[0].tasks, 7);
        assert_eq!(stats.caller_wait_ns, 0);
        assert_eq!(pool.last_caller_wait_ns(), 0);
    }

    #[test]
    fn merge_wait_reflects_a_straggling_worker() {
        let pool = ExecPool::new(2);
        pool.set_metering(true);
        // Two tasks: the caller claims one instantly, the worker's one
        // sleeps — the caller must log the difference as merge wait.
        // (Which index each thread claims is racy, so make both slow
        // except the first, guaranteeing the caller finishes early at
        // least once across attempts.)
        let mut saw_wait = false;
        for _ in 0..20 {
            pool.run(2, |i| {
                if i == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            });
            if pool.last_caller_wait_ns() > 0 {
                saw_wait = true;
                break;
            }
        }
        assert!(saw_wait, "caller never observed a merge wait");
        assert!(pool.stats().caller_wait_ns > 0);
    }

    #[test]
    fn disabling_metering_freezes_counters() {
        let pool = ExecPool::new(3);
        pool.set_metering(true);
        pool.run(9, |i| i);
        let before = pool.stats();
        pool.set_metering(false);
        pool.run(9, |i| i);
        let after = pool.stats();
        assert_eq!(before.batches, after.batches);
        let tasks = |s: &PoolStats| s.threads_stats.iter().map(|t| t.tasks).sum::<u64>();
        assert_eq!(tasks(&before), tasks(&after));
    }
}
