//! Property-based tests for the fault-plan and injector contracts:
//! seeded generation is deterministic and always valid, activation is a
//! pure function of simulated time, and sensor perturbations never
//! produce non-finite telemetry.

use baat_faults::{FaultInjector, FaultKind, FaultMix, FaultPlan, FaultSpec};
use baat_testkit::prelude::*;
use baat_units::{Amperes, Celsius, SimDuration, SimInstant, Soc, Volts};

fn mix_strategy() -> impl Strategy<Value = FaultMix> {
    prop_oneof![Just(FaultMix::light()), Just(FaultMix::heavy())]
}

fn sample_at(secs: u64) -> baat_battery::SensorSample {
    baat_battery::SensorSample {
        at: SimInstant::from_secs(secs),
        voltage: Volts::new(12.3),
        current: Amperes::new(4.0),
        temperature: Celsius::new(25.0),
        soc: Soc::new(0.7).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same seed always generates the same plan, and every generated
    /// plan validates against the topology it was generated for.
    #[test]
    fn generation_is_deterministic_and_valid(
        seed in 0u64..1_000,
        days in 1usize..4,
        banks in 1usize..7,
        mix in mix_strategy(),
    ) {
        let a = FaultPlan::generate(seed, days, 6, banks, &mix);
        let b = FaultPlan::generate(seed, days, 6, banks, &mix);
        prop_assert_eq!(a.faults(), b.faults(), "same seed, same plan");
        prop_assert!(a.validate(6, banks).is_ok());
        prop_assert_eq!(a.len(), days * mix.per_day);
    }

    /// Activation windows are half-open: in force at `start`, out of
    /// force at `start + duration`, never outside.
    #[test]
    fn activation_is_a_pure_function_of_time(
        start in 0u64..86_400,
        dur_minutes in 1u64..180,
        probe in 0u64..172_800,
    ) {
        let spec = FaultSpec {
            kind: FaultKind::PvOutage,
            start: SimInstant::from_secs(start),
            duration: SimDuration::from_minutes(dur_minutes),
        };
        let now = SimInstant::from_secs(probe);
        let expected = probe >= start && probe < start + dur_minutes * 60;
        prop_assert_eq!(spec.active_at(now), expected);
    }

    /// Stepping an injector over a generated plan keeps the active count
    /// consistent with the transitions it reported, and every window
    /// eventually clears.
    #[test]
    fn transitions_balance_over_a_run(seed in 0u64..500, mix in mix_strategy()) {
        let plan = FaultPlan::generate(seed, 1, 6, 6, &mix);
        let mut injector = FaultInjector::new(&plan, 6, seed);
        let mut entered = 0usize;
        let mut cleared = 0usize;
        // Step a simulated day and a half at one-minute resolution: all
        // generated windows start and end inside it.
        for minute in 0..(36 * 60) {
            for t in injector.begin_step(SimInstant::from_secs(minute * 60)) {
                if t.entered {
                    entered += 1;
                } else {
                    cleared += 1;
                }
            }
            prop_assert_eq!(injector.active_count(), entered - cleared);
            let scale = injector.solar_scale();
            prop_assert!((0.0..=1.0).contains(&scale), "solar scale {scale}");
        }
        prop_assert_eq!(entered, plan.len(), "every fault fires exactly once");
        prop_assert_eq!(cleared, plan.len(), "every fault clears");
    }

    /// Arbitrary active sensor faults never corrupt a sample into
    /// non-finite telemetry, and the perturbed timestamp is never newer
    /// than the truth.
    #[test]
    fn perturbed_samples_stay_finite(
        seed in 0u64..500,
        sigma in 0.01f64..0.5,
        drift in 0.01f64..0.2,
    ) {
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind: FaultKind::SensorNoise { bank: 0, sigma },
            start: SimInstant::START,
            duration: SimDuration::from_hours(2),
        });
        plan.push(FaultSpec {
            kind: FaultKind::SensorDrift { bank: 0, volts_per_hour: drift },
            start: SimInstant::START,
            duration: SimDuration::from_hours(2),
        });
        plan.push(FaultSpec {
            kind: FaultKind::ThermalSensorLoss { bank: 0 },
            start: SimInstant::START,
            duration: SimDuration::from_hours(2),
        });
        let mut injector = FaultInjector::new(&plan, 1, seed);
        injector.begin_step(SimInstant::START);
        for minute in 0..120 {
            let now = SimInstant::from_secs(minute * 60);
            let out = injector
                .observe_sample(0, sample_at(minute * 60), now)
                .expect("noise/drift faults never drop samples");
            prop_assert!(out.voltage.as_f64().is_finite());
            prop_assert!(out.current.as_f64().is_finite());
            prop_assert!(out.temperature.as_f64().is_finite());
            prop_assert!(out.at <= now);
        }
    }

    /// An injector over an empty plan is the identity on every seam, for
    /// any seed: the clean path draws nothing and perturbs nothing.
    #[test]
    fn empty_plan_is_the_identity(seed in 0u64..1_000, probe in 0u64..86_400) {
        let mut injector = FaultInjector::new(&FaultPlan::new(), 4, seed);
        prop_assert!(injector.is_idle());
        prop_assert!(injector.begin_step(SimInstant::from_secs(probe)).is_empty());
        prop_assert_eq!(injector.solar_scale(), 1.0);
        prop_assert!(!injector.migrations_blocked());
        for bank in 0..4 {
            prop_assert!(!injector.host_down(bank));
            let s = sample_at(probe);
            prop_assert_eq!(
                injector.observe_sample(bank, s, SimInstant::from_secs(probe)),
                Some(s)
            );
        }
    }
}
