//! The engine-facing fault injector: window activation tracking and
//! per-seam effect queries.

use baat_battery::SensorSample;
use baat_rng::{derive_seed, StdRng};
use baat_units::{Amperes, SimInstant, Volts};

use crate::plan::{FaultKind, FaultPlan, FaultSpec};

/// Stream label for injection-time noise (see `baat_rng::derive_seed`).
const NOISE_STREAM: u64 = 0xFA02;

/// One fault entering or leaving force at a step boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultTransition {
    /// Index of the fault in the plan.
    pub index: usize,
    /// The fault that changed state.
    pub kind: FaultKind,
    /// `true` when the fault was injected, `false` when it cleared.
    pub entered: bool,
}

/// The sensor/charger/battery perturbations in force on one bank.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BankFaults {
    /// No new telemetry rows flow.
    pub sensor_dropout: bool,
    /// Telemetry repeats the onset reading.
    pub sensor_stuck: bool,
    /// The charger delivers no power.
    pub charger_failed: bool,
    /// The charger is latched in float trickle.
    pub charger_stuck: bool,
    /// The battery string is open-circuit: no charge or discharge.
    pub open_circuit: bool,
}

/// Checkpointable dynamic state of a [`FaultInjector`]: activation
/// flags, stuck-at/thermal holds and the noise-stream position.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectorState {
    /// Per-fault activation flags, in plan order.
    pub active: Vec<bool>,
    /// Per-bank sample held by an active stuck-at fault.
    pub held: Vec<Option<SensorSample>>,
    /// Per-bank temperature held by an active thermal-loss fault.
    pub held_temp: Vec<Option<baat_units::Celsius>>,
    /// Noise-stream position.
    pub rng_state: [u64; 4],
}

/// Tracks which faults of a [`FaultPlan`] are in force and applies their
/// effects at the engine's seams.
///
/// The injector is fully deterministic: activation is a function of
/// simulated time, and its private RNG (Gaussian sensor noise) advances
/// only while a noise fault is active. An injector over an empty plan
/// does nothing and draws nothing.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    specs: Vec<FaultSpec>,
    active: Vec<bool>,
    /// Per-bank sample held by an active stuck-at fault.
    held: Vec<Option<SensorSample>>,
    /// Per-bank temperature held by an active thermal-loss fault.
    held_temp: Vec<Option<baat_units::Celsius>>,
    rng: StdRng,
}

impl FaultInjector {
    /// Creates an injector for `plan` over `banks` battery banks, with
    /// its noise stream derived from the simulation seed.
    pub fn new(plan: &FaultPlan, banks: usize, seed: u64) -> Self {
        Self {
            specs: plan.faults().to_vec(),
            active: vec![false; plan.len()],
            held: vec![None; banks],
            held_temp: vec![None; banks],
            rng: StdRng::seed_from_u64(derive_seed(seed, NOISE_STREAM)),
        }
    }

    /// `true` if the plan schedules nothing — the engine can skip every
    /// fault hook.
    pub fn is_idle(&self) -> bool {
        self.specs.is_empty()
    }

    /// Captures the injector's dynamic state for checkpointing: which
    /// faults are in force, the per-bank held samples/temperatures, and
    /// the noise-stream position. The specs themselves are reproduced
    /// from the fault plan at restore time.
    pub fn capture_state(&self) -> InjectorState {
        InjectorState {
            active: self.active.clone(),
            held: self.held.clone(),
            held_temp: self.held_temp.clone(),
            rng_state: self.rng.state(),
        }
    }

    /// Re-applies a captured dynamic state onto this injector. The
    /// injector must have been built over the same plan and bank count
    /// as the captured one; mismatched lengths are ignored field-wise
    /// (the caller's config-hash check is the real guard).
    pub fn restore_state(&mut self, state: &InjectorState) {
        if state.active.len() == self.active.len() {
            self.active.clone_from(&state.active);
        }
        if state.held.len() == self.held.len() {
            self.held.clone_from(&state.held);
        }
        if state.held_temp.len() == self.held_temp.len() {
            self.held_temp.clone_from(&state.held_temp);
        }
        self.rng = StdRng::from_state(state.rng_state);
    }

    /// Number of faults currently in force.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Advances the injector to `now` and returns the faults that
    /// entered or left force, in plan order.
    pub fn begin_step(&mut self, now: SimInstant) -> Vec<FaultTransition> {
        let mut transitions = Vec::new();
        for i in 0..self.specs.len() {
            let now_active = self.specs[i].active_at(now);
            if now_active == self.active[i] {
                continue;
            }
            self.active[i] = now_active;
            transitions.push(FaultTransition {
                index: i,
                kind: self.specs[i].kind,
                entered: now_active,
            });
            if !now_active {
                // Release holds when the last holding fault on the bank
                // clears, so recovery resumes live readings.
                match self.specs[i].kind {
                    FaultKind::SensorStuckAt { bank }
                        if !self.any_active(
                            |k| matches!(k, FaultKind::SensorStuckAt { bank: b } if b == bank),
                        ) =>
                    {
                        self.held[bank] = None;
                    }
                    FaultKind::ThermalSensorLoss { bank }
                        if !self.any_active(
                            |k| matches!(k, FaultKind::ThermalSensorLoss { bank: b } if b == bank),
                        ) =>
                    {
                        self.held_temp[bank] = None;
                    }
                    _ => {}
                }
            }
        }
        transitions
    }

    fn any_active(&self, pred: impl Fn(FaultKind) -> bool) -> bool {
        self.specs
            .iter()
            .zip(&self.active)
            .any(|(s, &a)| a && pred(s.kind))
    }

    /// The factor the PV feed is scaled by right now: `0` during an
    /// outage, the product of active derates otherwise, `1` when clean.
    pub fn solar_scale(&self) -> f64 {
        let mut scale = 1.0;
        for (spec, &active) in self.specs.iter().zip(&self.active) {
            if !active {
                continue;
            }
            match spec.kind {
                FaultKind::PvOutage => return 0.0,
                FaultKind::InverterDerate { fraction } => scale *= 1.0 - fraction,
                _ => {}
            }
        }
        scale
    }

    /// The charger/battery perturbations in force on `bank`.
    pub fn bank(&self, bank: usize) -> BankFaults {
        let mut f = BankFaults::default();
        for (spec, &active) in self.specs.iter().zip(&self.active) {
            if !active {
                continue;
            }
            match spec.kind {
                FaultKind::SensorDropout { bank: b } if b == bank => f.sensor_dropout = true,
                FaultKind::SensorStuckAt { bank: b } if b == bank => f.sensor_stuck = true,
                FaultKind::ChargerFailure { bank: b } if b == bank => f.charger_failed = true,
                FaultKind::ChargerModeStuck { bank: b } if b == bank => f.charger_stuck = true,
                FaultKind::BatteryOpenCircuit { bank: b } if b == bank => f.open_circuit = true,
                _ => {}
            }
        }
        f
    }

    /// `true` while a host-failure fault pins `node` down.
    pub fn host_down(&self, node: usize) -> bool {
        self.any_active(|k| matches!(k, FaultKind::HostFailure { node: n } if n == node))
    }

    /// `true` while a migrations-blocked fault is in force.
    pub fn migrations_blocked(&self) -> bool {
        self.any_active(|k| matches!(k, FaultKind::MigrationsBlocked))
    }

    /// Passes a freshly sensed sample through the bank's active sensor
    /// faults: `None` under dropout, the held onset reading under
    /// stuck-at, otherwise the sample with drift, noise, and thermal
    /// freeze applied in that fixed order.
    pub fn observe_sample(
        &mut self,
        bank: usize,
        fresh: SensorSample,
        now: SimInstant,
    ) -> Option<SensorSample> {
        let faults = self.bank(bank);
        if faults.sensor_dropout {
            return None;
        }
        if faults.sensor_stuck {
            return Some(*self.held[bank].get_or_insert(fresh));
        }
        let mut sample = fresh;
        let mut freeze_temp = false;
        for i in 0..self.specs.len() {
            if !self.active[i] {
                continue;
            }
            match self.specs[i].kind {
                FaultKind::SensorDrift {
                    bank: b,
                    volts_per_hour,
                } if b == bank => {
                    let hours = now.saturating_since(self.specs[i].start).as_hours();
                    sample.voltage = Volts::new(sample.voltage.as_f64() + volts_per_hour * hours);
                }
                FaultKind::SensorNoise { bank: b, sigma } if b == bank => {
                    sample.voltage = Volts::new(sample.voltage.as_f64() + sigma * self.gaussian());
                    sample.current =
                        Amperes::new(sample.current.as_f64() + sigma * self.gaussian());
                }
                FaultKind::ThermalSensorLoss { bank: b } if b == bank => freeze_temp = true,
                _ => {}
            }
        }
        if freeze_temp {
            sample.temperature = *self.held_temp[bank].get_or_insert(fresh.temperature);
        }
        Some(sample)
    }

    /// Standard normal draw via Box–Muller (two uniforms per draw, no
    /// caching, so the stream position is a pure function of the number
    /// of draws).
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.next_f64().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::{Celsius, SimDuration, Soc};

    fn sample(at: u64, volts: f64) -> SensorSample {
        SensorSample {
            at: SimInstant::from_secs(at),
            voltage: Volts::new(volts),
            current: Amperes::new(2.0),
            temperature: Celsius::new(25.0),
            soc: Soc::new(0.8).unwrap(),
        }
    }

    fn plan_of(kind: FaultKind, start: u64, secs: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind,
            start: SimInstant::from_secs(start),
            duration: SimDuration::from_secs(secs),
        });
        plan
    }

    #[test]
    fn transitions_fire_on_entry_and_exit() {
        let plan = plan_of(FaultKind::PvOutage, 100, 50);
        let mut inj = FaultInjector::new(&plan, 1, 1);
        assert!(inj.begin_step(SimInstant::from_secs(0)).is_empty());
        let enter = inj.begin_step(SimInstant::from_secs(100));
        assert_eq!(enter.len(), 1);
        assert!(enter[0].entered);
        assert_eq!(inj.active_count(), 1);
        assert!(inj.begin_step(SimInstant::from_secs(120)).is_empty());
        let exit = inj.begin_step(SimInstant::from_secs(150));
        assert_eq!(exit.len(), 1);
        assert!(!exit[0].entered);
        assert_eq!(inj.active_count(), 0);
    }

    #[test]
    fn dropout_swallows_and_stuck_holds() {
        let mut plan = plan_of(FaultKind::SensorDropout { bank: 0 }, 0, 10);
        plan.push(FaultSpec {
            kind: FaultKind::SensorStuckAt { bank: 0 },
            start: SimInstant::from_secs(20),
            duration: SimDuration::from_secs(10),
        });
        let mut inj = FaultInjector::new(&plan, 1, 1);
        inj.begin_step(SimInstant::from_secs(0));
        assert_eq!(
            inj.observe_sample(0, sample(0, 12.0), SimInstant::from_secs(0)),
            None
        );
        inj.begin_step(SimInstant::from_secs(20));
        let first = inj
            .observe_sample(0, sample(20, 12.0), SimInstant::from_secs(20))
            .unwrap();
        let later = inj
            .observe_sample(0, sample(25, 11.0), SimInstant::from_secs(25))
            .unwrap();
        assert_eq!(first, later, "stuck sensor repeats the onset reading");
        assert_eq!(later.at, SimInstant::from_secs(20));
        // After the fault clears, live readings resume.
        inj.begin_step(SimInstant::from_secs(30));
        let live = inj
            .observe_sample(0, sample(30, 11.5), SimInstant::from_secs(30))
            .unwrap();
        assert_eq!(live.voltage, Volts::new(11.5));
    }

    #[test]
    fn drift_grows_with_elapsed_time() {
        let plan = plan_of(
            FaultKind::SensorDrift {
                bank: 0,
                volts_per_hour: 0.1,
            },
            0,
            7200,
        );
        let mut inj = FaultInjector::new(&plan, 1, 1);
        inj.begin_step(SimInstant::from_secs(3600));
        let s = inj
            .observe_sample(0, sample(3600, 12.0), SimInstant::from_secs(3600))
            .unwrap();
        assert!((s.voltage.as_f64() - 12.1).abs() < 1e-9);
    }

    #[test]
    fn noise_is_seed_deterministic_and_zero_when_clean() {
        let plan = plan_of(
            FaultKind::SensorNoise {
                bank: 0,
                sigma: 0.2,
            },
            0,
            100,
        );
        let mut a = FaultInjector::new(&plan, 1, 7);
        let mut b = FaultInjector::new(&plan, 1, 7);
        a.begin_step(SimInstant::START);
        b.begin_step(SimInstant::START);
        for t in 0..10 {
            let sa = a.observe_sample(0, sample(t, 12.0), SimInstant::from_secs(t));
            let sb = b.observe_sample(0, sample(t, 12.0), SimInstant::from_secs(t));
            assert_eq!(sa, sb);
        }
        // Other banks are untouched.
        let clean = a.observe_sample(0, sample(200, 12.0), SimInstant::from_secs(200));
        a.begin_step(SimInstant::from_secs(200));
        let after = a
            .observe_sample(0, sample(200, 12.0), SimInstant::from_secs(200))
            .unwrap();
        assert_ne!(clean.unwrap(), after, "noise was active before clearing");
        assert_eq!(after.voltage, Volts::new(12.0));
    }

    #[test]
    fn thermal_loss_freezes_only_temperature() {
        let plan = plan_of(FaultKind::ThermalSensorLoss { bank: 0 }, 0, 100);
        let mut inj = FaultInjector::new(&plan, 1, 1);
        inj.begin_step(SimInstant::START);
        let first = inj
            .observe_sample(0, sample(0, 12.0), SimInstant::START)
            .unwrap();
        let mut warmer = sample(50, 11.5);
        warmer.temperature = Celsius::new(40.0);
        let later = inj
            .observe_sample(0, warmer, SimInstant::from_secs(50))
            .unwrap();
        assert_eq!(later.temperature, first.temperature);
        assert_eq!(later.voltage, Volts::new(11.5), "electrical channels live");
    }

    #[test]
    fn solar_faults_scale_the_feed() {
        let mut plan = plan_of(FaultKind::InverterDerate { fraction: 0.5 }, 0, 100);
        plan.push(FaultSpec {
            kind: FaultKind::PvOutage,
            start: SimInstant::from_secs(50),
            duration: SimDuration::from_secs(10),
        });
        let mut inj = FaultInjector::new(&plan, 1, 1);
        assert_eq!(inj.solar_scale(), 1.0);
        inj.begin_step(SimInstant::START);
        assert!((inj.solar_scale() - 0.5).abs() < 1e-12);
        inj.begin_step(SimInstant::from_secs(50));
        assert_eq!(inj.solar_scale(), 0.0, "outage dominates");
    }

    #[test]
    fn bank_host_and_migration_queries() {
        let mut plan = plan_of(FaultKind::ChargerFailure { bank: 1 }, 0, 100);
        plan.push(FaultSpec {
            kind: FaultKind::HostFailure { node: 3 },
            start: SimInstant::START,
            duration: SimDuration::from_secs(100),
        });
        plan.push(FaultSpec {
            kind: FaultKind::MigrationsBlocked,
            start: SimInstant::START,
            duration: SimDuration::from_secs(100),
        });
        let mut inj = FaultInjector::new(&plan, 2, 1);
        inj.begin_step(SimInstant::START);
        assert!(inj.bank(1).charger_failed);
        assert!(!inj.bank(0).charger_failed);
        assert!(inj.host_down(3));
        assert!(!inj.host_down(0));
        assert!(inj.migrations_blocked());
        inj.begin_step(SimInstant::from_secs(100));
        assert!(!inj.migrations_blocked());
        assert!(!inj.is_idle());
    }

    #[test]
    fn empty_plan_is_idle_and_inert() {
        let plan = FaultPlan::new();
        let mut inj = FaultInjector::new(&plan, 3, 9);
        assert!(inj.is_idle());
        assert!(inj.begin_step(SimInstant::from_secs(1_000)).is_empty());
        assert_eq!(inj.solar_scale(), 1.0);
        assert_eq!(inj.bank(0), BankFaults::default());
        let s = sample(5, 12.0);
        assert_eq!(
            inj.observe_sample(0, s, SimInstant::from_secs(5)),
            Some(s),
            "clean path must be the identity"
        );
    }
}
