//! Fault taxonomy, timed fault windows, and seeded plan generation.

use baat_rng::{derive_seed, StdRng};
use baat_units::{SimDuration, SimInstant};

/// Stream label for plan generation (see `baat_rng::derive_seed`).
const PLAN_STREAM: u64 = 0xFA17;

/// Default telemetry staleness bound: a node whose freshest power-table
/// row is older than this at a control tick is considered degraded (the
/// prototype's controller polls every minute; five missed polls means
/// the sensor chain is gone, not slow).
pub const DEFAULT_STALENESS_LIMIT: SimDuration = SimDuration::from_minutes(5);

/// One injectable disturbance, matching a physical failure mode of the
/// prototype (§V) and a well-defined seam of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The bank's sensor front-end stops producing rows (broken DAQ
    /// channel): no new telemetry reaches the power table.
    SensorDropout {
        /// Affected battery bank.
        bank: usize,
    },
    /// The bank's sensor repeats its reading from fault onset, timestamp
    /// included (wedged acquisition buffer).
    SensorStuckAt {
        /// Affected battery bank.
        bank: usize,
    },
    /// Extra zero-mean Gaussian noise on the bank's electrical channels
    /// (ground loop / EMI on the BNC block).
    SensorNoise {
        /// Affected battery bank.
        bank: usize,
        /// Noise standard deviation, applied in volts to the voltage
        /// channel and in amperes to the current channel.
        sigma: f64,
    },
    /// Linear calibration drift on the bank's voltage channel.
    SensorDrift {
        /// Affected battery bank.
        bank: usize,
        /// Drift rate in volts per hour since fault onset.
        volts_per_hour: f64,
    },
    /// The PV feed drops out entirely (tripped combiner breaker).
    PvOutage,
    /// The inverter derates the PV feed to a fraction of its output
    /// (thermal derating / MPPT fault).
    InverterDerate {
        /// Fraction of PV output *lost* while the fault is active, in
        /// `(0, 1)`.
        fraction: f64,
    },
    /// The bank's charger fails outright: no charging in any stage.
    ChargerFailure {
        /// Affected battery bank.
        bank: usize,
    },
    /// The bank's charger is stuck in float: only the maintenance
    /// trickle flows regardless of SoC (mode-control thrash latched
    /// low).
    ChargerModeStuck {
        /// Affected battery bank.
        bank: usize,
    },
    /// The bank's battery string goes open-circuit (corroded terminal):
    /// no charge or discharge current flows.
    BatteryOpenCircuit {
        /// Affected battery bank.
        bank: usize,
    },
    /// The bank's thermal sensor freezes at its onset reading; the
    /// electrical channels stay live.
    ThermalSensorLoss {
        /// Affected battery bank.
        bank: usize,
    },
    /// The host crashes and stays down while the fault is active; the
    /// engine's normal restart path revives it afterwards.
    HostFailure {
        /// Affected server node.
        node: usize,
    },
    /// The migration control path is broken cluster-wide: every
    /// requested migration is rejected while the fault is active.
    MigrationsBlocked,
}

impl FaultKind {
    /// Stable snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SensorDropout { .. } => "sensor_dropout",
            FaultKind::SensorStuckAt { .. } => "sensor_stuck_at",
            FaultKind::SensorNoise { .. } => "sensor_noise",
            FaultKind::SensorDrift { .. } => "sensor_drift",
            FaultKind::PvOutage => "pv_outage",
            FaultKind::InverterDerate { .. } => "inverter_derate",
            FaultKind::ChargerFailure { .. } => "charger_failure",
            FaultKind::ChargerModeStuck { .. } => "charger_mode_stuck",
            FaultKind::BatteryOpenCircuit { .. } => "battery_open_circuit",
            FaultKind::ThermalSensorLoss { .. } => "thermal_sensor_loss",
            FaultKind::HostFailure { .. } => "host_failure",
            FaultKind::MigrationsBlocked => "migrations_blocked",
        }
    }

    /// The bank or node index the fault targets, if it targets one.
    pub fn target(self) -> Option<usize> {
        match self {
            FaultKind::SensorDropout { bank }
            | FaultKind::SensorStuckAt { bank }
            | FaultKind::SensorNoise { bank, .. }
            | FaultKind::SensorDrift { bank, .. }
            | FaultKind::ChargerFailure { bank }
            | FaultKind::ChargerModeStuck { bank }
            | FaultKind::BatteryOpenCircuit { bank }
            | FaultKind::ThermalSensorLoss { bank } => Some(bank),
            FaultKind::HostFailure { node } => Some(node),
            FaultKind::PvOutage
            | FaultKind::InverterDerate { .. }
            | FaultKind::MigrationsBlocked => None,
        }
    }

    /// The fault's scalar parameter (noise sigma, drift rate, derate
    /// fraction), if it has one.
    pub fn param(self) -> Option<f64> {
        match self {
            FaultKind::SensorNoise { sigma, .. } => Some(sigma),
            FaultKind::SensorDrift { volts_per_hour, .. } => Some(volts_per_hour),
            FaultKind::InverterDerate { fraction } => Some(fraction),
            _ => None,
        }
    }
}

/// One fault scheduled over a time window `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// What is injected.
    pub kind: FaultKind,
    /// When the fault begins.
    pub start: SimInstant,
    /// How long it lasts.
    pub duration: SimDuration,
}

impl FaultSpec {
    /// The instant the fault clears.
    pub fn end(&self) -> SimInstant {
        self.start + self.duration
    }

    /// `true` while the fault is in force at `now` (half-open window).
    pub fn active_at(&self, now: SimInstant) -> bool {
        now >= self.start && now < self.end()
    }
}

/// Why a [`FaultPlan`] was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault targets a bank or node outside the topology.
    TargetOutOfRange {
        /// "bank" or "node".
        what: &'static str,
        /// The out-of-range index.
        index: usize,
        /// Number of valid targets.
        len: usize,
    },
    /// A fault's scalar parameter is outside its valid domain.
    BadParam {
        /// The offending fault kind name.
        kind: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A fault window has zero duration.
    EmptyWindow {
        /// The offending fault kind name.
        kind: &'static str,
    },
}

impl core::fmt::Display for FaultError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultError::TargetOutOfRange { what, index, len } => {
                write!(f, "fault targets {what} {index}, but only {len} exist")
            }
            FaultError::BadParam { kind, reason } => {
                write!(f, "fault `{kind}` has an invalid parameter: {reason}")
            }
            FaultError::EmptyWindow { kind } => {
                write!(f, "fault `{kind}` has a zero-length window")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A replayable schedule of faults plus the staleness contract the
/// engine degrades under.
///
/// The default plan is empty and injects nothing; an engine configured
/// with it behaves bit-identically to one without fault support.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
    staleness_limit: SimDuration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            faults: Vec::new(),
            staleness_limit: DEFAULT_STALENESS_LIMIT,
        }
    }
}

impl FaultPlan {
    /// Creates an empty plan with the default staleness limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a fault window.
    pub fn push(&mut self, spec: FaultSpec) -> &mut Self {
        self.faults.push(spec);
        self
    }

    /// The scheduled fault windows, in insertion order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The telemetry staleness bound past which a node degrades.
    pub fn staleness_limit(&self) -> SimDuration {
        self.staleness_limit
    }

    /// Overrides the staleness bound.
    pub fn set_staleness_limit(&mut self, limit: SimDuration) -> &mut Self {
        self.staleness_limit = limit;
        self
    }

    /// Checks every scheduled fault against the topology (`nodes`
    /// servers, `banks` battery banks) and its parameter domain.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultError`] found.
    pub fn validate(&self, nodes: usize, banks: usize) -> Result<(), FaultError> {
        if self.staleness_limit.is_zero() {
            return Err(FaultError::BadParam {
                kind: "staleness_limit",
                reason: "must be positive".to_owned(),
            });
        }
        for spec in &self.faults {
            let kind = spec.kind.name();
            if spec.duration.is_zero() {
                return Err(FaultError::EmptyWindow { kind });
            }
            match spec.kind {
                FaultKind::HostFailure { node } => {
                    if node >= nodes {
                        return Err(FaultError::TargetOutOfRange {
                            what: "node",
                            index: node,
                            len: nodes,
                        });
                    }
                }
                FaultKind::SensorNoise { bank, sigma } => {
                    check_bank(bank, banks)?;
                    if !(sigma.is_finite() && sigma > 0.0) {
                        return Err(FaultError::BadParam {
                            kind,
                            reason: format!("sigma must be positive and finite, got {sigma}"),
                        });
                    }
                }
                FaultKind::SensorDrift {
                    bank,
                    volts_per_hour,
                } => {
                    check_bank(bank, banks)?;
                    if !volts_per_hour.is_finite() {
                        return Err(FaultError::BadParam {
                            kind,
                            reason: format!("drift rate must be finite, got {volts_per_hour}"),
                        });
                    }
                }
                FaultKind::InverterDerate { fraction } => {
                    if !(fraction.is_finite() && fraction > 0.0 && fraction < 1.0) {
                        return Err(FaultError::BadParam {
                            kind,
                            reason: format!("derate fraction must be in (0, 1), got {fraction}"),
                        });
                    }
                }
                FaultKind::SensorDropout { bank }
                | FaultKind::SensorStuckAt { bank }
                | FaultKind::ChargerFailure { bank }
                | FaultKind::ChargerModeStuck { bank }
                | FaultKind::BatteryOpenCircuit { bank }
                | FaultKind::ThermalSensorLoss { bank } => check_bank(bank, banks)?,
                FaultKind::PvOutage | FaultKind::MigrationsBlocked => {}
            }
        }
        Ok(())
    }

    /// Generates a random but fully seed-determined plan: `mix.per_day`
    /// faults on each of `days` days, targets drawn over `nodes` servers
    /// and `banks` banks, windows inside the prototype's operating day.
    ///
    /// The same `(seed, days, nodes, banks, mix)` always yields the same
    /// plan — this is the replayable scenario matrix the bench sweeps
    /// run clean vs. faulted.
    pub fn generate(seed: u64, days: usize, nodes: usize, banks: usize, mix: &FaultMix) -> Self {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, PLAN_STREAM));
        let mut plan = Self::new();
        let min_secs = SimDuration::from_minutes(5).as_secs();
        let max_secs = mix.max_duration.as_secs().max(min_secs + 1);
        for day in 0..days {
            for _ in 0..mix.per_day {
                // Draw in a fixed order so the plan is a pure function of
                // the seed: kind class, target, parameter, window.
                let kind = match rng.random_range(0..12u32) {
                    0 => FaultKind::SensorDropout {
                        bank: rng.random_range(0..banks),
                    },
                    1 => FaultKind::SensorStuckAt {
                        bank: rng.random_range(0..banks),
                    },
                    2 => FaultKind::SensorNoise {
                        bank: rng.random_range(0..banks),
                        sigma: rng.random_range(0.05..0.5),
                    },
                    3 => FaultKind::SensorDrift {
                        bank: rng.random_range(0..banks),
                        volts_per_hour: rng.random_range(0.01..0.2),
                    },
                    4 => FaultKind::PvOutage,
                    5 => FaultKind::InverterDerate {
                        fraction: rng.random_range(0.2..0.8),
                    },
                    6 => FaultKind::ChargerFailure {
                        bank: rng.random_range(0..banks),
                    },
                    7 => FaultKind::ChargerModeStuck {
                        bank: rng.random_range(0..banks),
                    },
                    8 => FaultKind::BatteryOpenCircuit {
                        bank: rng.random_range(0..banks),
                    },
                    9 => FaultKind::ThermalSensorLoss {
                        bank: rng.random_range(0..banks),
                    },
                    10 => FaultKind::HostFailure {
                        node: rng.random_range(0..nodes),
                    },
                    _ => FaultKind::MigrationsBlocked,
                };
                // Start inside 09:00–17:00 so every fault overlaps the
                // operating window where it can actually bite.
                let start_tod = rng.random_range(9 * 3600..17 * 3600u64);
                let duration = SimDuration::from_secs(rng.random_range(min_secs..=max_secs));
                plan.push(FaultSpec {
                    kind,
                    start: SimInstant::from_secs(day as u64 * 86_400 + start_tod),
                    duration,
                });
            }
        }
        plan
    }
}

fn check_bank(bank: usize, banks: usize) -> Result<(), FaultError> {
    if bank >= banks {
        return Err(FaultError::TargetOutOfRange {
            what: "bank",
            index: bank,
            len: banks,
        });
    }
    Ok(())
}

/// Intensity knobs for [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Faults scheduled per simulated day.
    pub per_day: usize,
    /// Longest fault window drawn (windows are uniform between five
    /// minutes and this).
    pub max_duration: SimDuration,
}

impl FaultMix {
    /// A light disturbance day: two faults, up to half an hour each.
    pub fn light() -> Self {
        Self {
            per_day: 2,
            max_duration: SimDuration::from_minutes(30),
        }
    }

    /// A heavy disturbance day: six faults, up to two hours each.
    pub fn heavy() -> Self {
        Self {
            per_day: 6,
            max_duration: SimDuration::from_hours(2),
        }
    }

    /// Parses a mix name (`"light"` / `"heavy"`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "light" => Some(Self::light()),
            "heavy" => Some(Self::heavy()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default_and_valid() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.staleness_limit(), DEFAULT_STALENESS_LIMIT);
        assert_eq!(plan, FaultPlan::default());
        plan.validate(6, 6).unwrap();
    }

    #[test]
    fn window_arithmetic() {
        let spec = FaultSpec {
            kind: FaultKind::PvOutage,
            start: SimInstant::from_secs(100),
            duration: SimDuration::from_secs(50),
        };
        assert!(!spec.active_at(SimInstant::from_secs(99)));
        assert!(spec.active_at(SimInstant::from_secs(100)));
        assert!(spec.active_at(SimInstant::from_secs(149)));
        assert!(!spec.active_at(SimInstant::from_secs(150)));
    }

    #[test]
    fn validation_rejects_bad_targets_and_params() {
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind: FaultKind::SensorDropout { bank: 9 },
            start: SimInstant::START,
            duration: SimDuration::from_secs(1),
        });
        assert!(matches!(
            plan.validate(6, 6),
            Err(FaultError::TargetOutOfRange { what: "bank", .. })
        ));

        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind: FaultKind::HostFailure { node: 6 },
            start: SimInstant::START,
            duration: SimDuration::from_secs(1),
        });
        assert!(matches!(
            plan.validate(6, 6),
            Err(FaultError::TargetOutOfRange { what: "node", .. })
        ));

        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind: FaultKind::InverterDerate { fraction: 1.5 },
            start: SimInstant::START,
            duration: SimDuration::from_secs(1),
        });
        assert!(matches!(
            plan.validate(6, 6),
            Err(FaultError::BadParam { .. })
        ));

        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind: FaultKind::PvOutage,
            start: SimInstant::START,
            duration: SimDuration::ZERO,
        });
        assert!(matches!(
            plan.validate(6, 6),
            Err(FaultError::EmptyWindow { .. })
        ));
    }

    #[test]
    fn generated_plans_are_seed_deterministic_and_valid() {
        let a = FaultPlan::generate(7, 3, 6, 6, &FaultMix::heavy());
        let b = FaultPlan::generate(7, 3, 6, 6, &FaultMix::heavy());
        assert_eq!(a, b);
        assert_eq!(a.len(), 18);
        a.validate(6, 6).unwrap();
        let c = FaultPlan::generate(8, 3, 6, 6, &FaultMix::heavy());
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn kind_names_targets_and_params_are_stable() {
        let k = FaultKind::SensorNoise {
            bank: 2,
            sigma: 0.1,
        };
        assert_eq!(k.name(), "sensor_noise");
        assert_eq!(k.target(), Some(2));
        assert_eq!(k.param(), Some(0.1));
        assert_eq!(FaultKind::PvOutage.target(), None);
        assert_eq!(FaultKind::MigrationsBlocked.param(), None);
        assert_eq!(FaultKind::HostFailure { node: 4 }.target(), Some(4));
    }
}
