//! Seeded workload arrival generation.
//!
//! The paper "deploy[s] and iteratively run[s] the workloads hosted in
//! virtual machines" through each prototype day (§VI.B). The generator
//! reproduces that pattern: a Web Serving service starts at power-on, and
//! batch jobs arrive through the day and are re-submitted as they finish.

use baat_rng::StdRng;
use baat_units::TimeOfDay;

use crate::apps::WorkloadKind;
use crate::vm::{Vm, VmId};

/// One scheduled arrival: a workload that should be submitted at a time of
/// day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Submission time.
    pub at: TimeOfDay,
    /// The workload to submit.
    pub kind: WorkloadKind,
}

/// Deterministic workload generator for one simulated day.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    rng: StdRng,
    next_id: u64,
}

impl WorkloadGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// Checkpoint view: the RNG stream position and the next VM id.
    pub fn state(&self) -> ([u64; 4], u64) {
        (self.rng.state(), self.next_id)
    }

    /// Rebuilds a generator at a saved position (see
    /// [`WorkloadGenerator::state`]).
    pub fn restore(rng_state: [u64; 4], next_id: u64) -> Self {
        Self {
            rng: StdRng::from_state(rng_state),
            next_id,
        }
    }

    /// Allocates the next VM for a workload.
    pub fn spawn(&mut self, kind: WorkloadKind) -> Vm {
        let id = VmId(self.next_id);
        self.next_id += 1;
        Vm::new(id, kind)
    }

    /// Builds the day's arrival plan: `services` Web Serving instances at
    /// power-on (08:30) plus `batch_jobs` batch arrivals spread over the
    /// working day, drawn from the five batch workloads.
    ///
    /// Arrivals are sorted by time.
    pub fn daily_plan(&mut self, services: usize, batch_jobs: usize) -> Vec<Arrival> {
        let mut plan = Vec::with_capacity(services + batch_jobs);
        for _ in 0..services {
            plan.push(Arrival {
                at: TimeOfDay::from_hm(8, 30),
                kind: WorkloadKind::WebServing,
            });
        }
        const BATCH: [WorkloadKind; 5] = [
            WorkloadKind::NutchIndexing,
            WorkloadKind::KMeans,
            WorkloadKind::WordCount,
            WorkloadKind::SoftwareTesting,
            WorkloadKind::DataAnalytics,
        ];
        for _ in 0..batch_jobs {
            // Arrivals between 08:30 and 16:00 so jobs can finish by
            // shutdown.
            let secs = self.rng.random_range((8 * 3600 + 1800)..(16 * 3600)) as u32;
            let kind = BATCH[self.rng.random_range(0..BATCH.len())];
            plan.push(Arrival {
                at: TimeOfDay::from_secs(secs),
                kind,
            });
        }
        plan.sort_by_key(|a| a.at);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_ids_are_unique_and_sequential() {
        let mut g = WorkloadGenerator::new(1);
        let a = g.spawn(WorkloadKind::KMeans);
        let b = g.spawn(WorkloadKind::WordCount);
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), VmId(0));
        assert_eq!(b.id(), VmId(1));
    }

    #[test]
    fn plan_is_sorted_and_sized() {
        let mut g = WorkloadGenerator::new(2);
        let plan = g.daily_plan(2, 10);
        assert_eq!(plan.len(), 12);
        for pair in plan.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn services_start_at_power_on() {
        let mut g = WorkloadGenerator::new(3);
        let plan = g.daily_plan(3, 0);
        assert!(plan
            .iter()
            .all(|a| a.kind == WorkloadKind::WebServing && a.at == TimeOfDay::from_hm(8, 30)));
    }

    #[test]
    fn batch_arrivals_within_working_window() {
        let mut g = WorkloadGenerator::new(4);
        let plan = g.daily_plan(0, 50);
        for a in &plan {
            assert!(a.at >= TimeOfDay::from_hm(8, 30) && a.at < TimeOfDay::from_hm(16, 0));
            assert_ne!(a.kind, WorkloadKind::WebServing);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = WorkloadGenerator::new(9);
        let mut b = WorkloadGenerator::new(9);
        assert_eq!(a.daily_plan(1, 20), b.daily_plan(1, 20));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGenerator::new(1);
        let mut b = WorkloadGenerator::new(2);
        assert_ne!(a.daily_plan(0, 20), b.daily_plan(0, 20));
    }
}
