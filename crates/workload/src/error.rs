//! Error types for workload configuration.

/// Configuration failure in the workload models.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl core::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkloadError::InvalidConfig { field, reason } => {
                write!(f, "invalid workload config field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let err = WorkloadError::InvalidConfig {
            field: "cores",
            reason: "zero".to_owned(),
        };
        assert!(err.to_string().contains("cores"));
    }
}
