//! Datacenter workload models — the demand-side substrate of the BAAT
//! reproduction.
//!
//! The paper evaluates six workloads (§V.B): Nutch Indexing, K-Means
//! Clustering and Word Count from HiBench, plus Software Testing, Web
//! Serving and Data Analytics from CloudSuite, all hosted in Xen VMs. This
//! crate provides:
//!
//! * [`WorkloadKind`] — the six workloads with utilization signatures,
//!   nominal durations and VM resource requests;
//! * [`PowerProfile`] / [`DemandClass`] — the coarse power/energy
//!   profiling and Table-3 Large/Small × More/Less classification that
//!   drives BAAT's Eq-6 weighting;
//! * [`Vm`] — a virtual machine tracking progress, useful work
//!   (core-hours, the Fig 20 throughput metric), pause/resume, and
//!   migration;
//! * [`WorkloadGenerator`] — seeded daily arrival plans.
//!
//! # Examples
//!
//! ```
//! use baat_workload::{Vm, VmId, WorkloadKind};
//! use baat_units::{Fraction, SimDuration, TimeOfDay};
//!
//! let mut vm = Vm::new(VmId(0), WorkloadKind::WordCount);
//! while !vm.is_completed() {
//!     vm.advance(Fraction::ONE, TimeOfDay::NOON, SimDuration::from_minutes(10));
//! }
//! assert!(vm.work_done() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod error;
mod generator;
mod profile;
mod vm;

pub use apps::WorkloadKind;
pub use error::WorkloadError;
pub use generator::{Arrival, WorkloadGenerator};
pub use profile::{DemandClass, EnergyDemand, PowerDemand, PowerProfile};
pub use vm::{Vm, VmId, VmSnapshot, VmState};
