//! The six datacenter workloads of the paper's evaluation (§V.B):
//! three from HiBench [39] (Nutch Indexing, K-Means Clustering, Word
//! Count) and three from CloudSuite [40] (Software Testing, Web Serving,
//! Data Analytics).
//!
//! Each kind carries a utilization signature shaped after its application
//! class: batch jobs have phase structure, services run all day with a
//! diurnal swing, and Software Testing is the "resource-hungry and
//! time-consuming" stressor the paper uses to load its servers.

use baat_units::{Fraction, SimDuration, TimeOfDay};

use crate::profile::PowerProfile;

/// One of the six paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// HiBench Nutch Indexing — large-scale search indexing.
    NutchIndexing,
    /// HiBench K-Means Clustering — iterative machine learning.
    KMeans,
    /// HiBench Word Count — classic MapReduce.
    WordCount,
    /// CloudSuite Software Testing — long, resource-hungry batch.
    SoftwareTesting,
    /// CloudSuite Web Serving — long-running interactive service.
    WebServing,
    /// CloudSuite Data Analytics — MapReduce-style analytics.
    DataAnalytics,
}

impl WorkloadKind {
    /// All six workloads in the paper's order.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::NutchIndexing,
        WorkloadKind::KMeans,
        WorkloadKind::WordCount,
        WorkloadKind::SoftwareTesting,
        WorkloadKind::WebServing,
        WorkloadKind::DataAnalytics,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::NutchIndexing => "Nutch Indexing",
            WorkloadKind::KMeans => "K-Means Clustering",
            WorkloadKind::WordCount => "Word Count",
            WorkloadKind::SoftwareTesting => "Software Testing",
            WorkloadKind::WebServing => "Web Serving",
            WorkloadKind::DataAnalytics => "Data Analytics",
        }
    }

    /// `true` for long-running services (vs finite batch jobs).
    pub fn is_service(self) -> bool {
        matches!(self, WorkloadKind::WebServing)
    }

    /// Nominal full-speed run length (services use the full prototype day).
    pub fn nominal_duration(self) -> SimDuration {
        match self {
            WorkloadKind::NutchIndexing => SimDuration::from_hours(2),
            WorkloadKind::KMeans => SimDuration::from_minutes(90),
            WorkloadKind::WordCount => SimDuration::from_hours(1),
            WorkloadKind::SoftwareTesting => SimDuration::from_hours(6),
            WorkloadKind::WebServing => SimDuration::from_hours(10),
            WorkloadKind::DataAnalytics => SimDuration::from_minutes(150),
        }
    }

    /// CPU utilization at a point in the job's life.
    ///
    /// `progress` is the fraction of the job completed (0–1); `tod` lets
    /// the Web Serving diurnal pattern follow wall-clock time.
    pub fn utilization(self, progress: f64, tod: TimeOfDay) -> Fraction {
        let p = progress.clamp(0.0, 1.0);
        let u = match self {
            // Indexing: crawl-parse-index phases with a heavy middle.
            WorkloadKind::NutchIndexing => {
                if p < 0.2 {
                    0.55
                } else if p < 0.8 {
                    0.80
                } else {
                    0.65
                }
            }
            // K-Means: sawtooth over iterations.
            WorkloadKind::KMeans => {
                let phase = (p * 8.0).fract();
                0.65 + 0.25 * (1.0 - phase)
            }
            // WordCount: hot map phase, cooler reduce phase.
            WorkloadKind::WordCount => {
                if p < 0.6 {
                    0.90
                } else {
                    0.50
                }
            }
            // Software Testing: sustained near-peak stress.
            WorkloadKind::SoftwareTesting => 0.95,
            // Web Serving: diurnal request rate peaking mid-afternoon.
            WorkloadKind::WebServing => {
                let h = tod.as_fractional_hours();
                let swing = ((h - 15.0) * core::f64::consts::PI / 12.0).cos();
                0.45 + 0.20 * swing
            }
            // Data Analytics: staged with a heavy shuffle.
            WorkloadKind::DataAnalytics => {
                if p < 0.3 {
                    0.60
                } else if p < 0.7 {
                    0.85
                } else {
                    0.70
                }
            }
        };
        Fraction::saturating(u)
    }

    /// Mean utilization over a full nominal run started at 08:30.
    pub fn mean_utilization(self) -> Fraction {
        let steps = 200;
        let start = f64::from(TimeOfDay::from_hm(8, 30).as_secs());
        let dur = self.nominal_duration().as_secs() as f64;
        let sum: f64 = (0..steps)
            .map(|i| {
                let p = (f64::from(i) + 0.5) / f64::from(steps);
                let tod_secs = ((start + p * dur) as u32) % 86_400;
                self.utilization(p, TimeOfDay::from_secs(tod_secs)).value()
            })
            .sum();
        Fraction::saturating(sum / f64::from(steps))
    }

    /// Peak utilization over the job's life.
    pub fn peak_utilization(self) -> Fraction {
        let steps = 400;
        let mut peak: f64 = 0.0;
        for i in 0..steps {
            let p = f64::from(i) / f64::from(steps);
            for h in [9u32, 12, 15, 18] {
                peak = peak.max(self.utilization(p, TimeOfDay::from_hm(h, 0)).value());
            }
        }
        Fraction::saturating(peak)
    }

    /// The coarse power profile BAAT's scheduler consumes (§IV.B.2.a).
    ///
    /// The mean/peak integrations behind a profile are pure but cost
    /// ~1800 utilization evaluations, and placement consults the
    /// profile for every VM admission attempt — so the six profiles
    /// are computed once per process and served from a table.
    pub fn profile(self) -> PowerProfile {
        static TABLE: std::sync::LazyLock<[PowerProfile; 6]> = std::sync::LazyLock::new(|| {
            WorkloadKind::ALL.map(|kind| {
                PowerProfile::new(
                    kind.mean_utilization(),
                    kind.peak_utilization(),
                    kind.nominal_duration(),
                )
            })
        });
        TABLE[self as usize]
    }

    /// Typical VM resource request (vCPUs, memory GiB) for this workload.
    pub fn resource_request(self) -> (u32, u32) {
        match self {
            WorkloadKind::NutchIndexing => (4, 8),
            WorkloadKind::KMeans => (4, 6),
            WorkloadKind::WordCount => (2, 4),
            WorkloadKind::SoftwareTesting => (6, 8),
            WorkloadKind::WebServing => (2, 6),
            WorkloadKind::DataAnalytics => (4, 8),
        }
    }
}

impl core::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads_match_the_paper() {
        assert_eq!(WorkloadKind::ALL.len(), 6);
        let names: Vec<_> = WorkloadKind::ALL.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"Nutch Indexing"));
        assert!(names.contains(&"Software Testing"));
    }

    #[test]
    fn software_testing_is_the_heaviest_stressor() {
        let st = WorkloadKind::SoftwareTesting.mean_utilization();
        for w in WorkloadKind::ALL {
            assert!(st >= w.mean_utilization(), "{w} beat Software Testing");
        }
    }

    #[test]
    fn web_serving_is_the_only_service() {
        for w in WorkloadKind::ALL {
            assert_eq!(w.is_service(), w == WorkloadKind::WebServing);
        }
    }

    #[test]
    fn utilization_always_valid_fraction() {
        for w in WorkloadKind::ALL {
            for i in 0..50 {
                let p = f64::from(i) / 50.0;
                for h in 0..24 {
                    let u = w.utilization(p, TimeOfDay::from_hm(h, 0)).value();
                    assert!((0.0..=1.0).contains(&u));
                }
            }
        }
    }

    #[test]
    fn web_serving_peaks_in_the_afternoon() {
        let w = WorkloadKind::WebServing;
        let afternoon = w.utilization(0.5, TimeOfDay::from_hm(15, 0));
        let night = w.utilization(0.5, TimeOfDay::from_hm(3, 0));
        assert!(afternoon > night);
    }

    #[test]
    fn wordcount_map_phase_hotter_than_reduce() {
        let w = WorkloadKind::WordCount;
        let map = w.utilization(0.3, TimeOfDay::NOON);
        let reduce = w.utilization(0.9, TimeOfDay::NOON);
        assert!(map > reduce);
    }

    #[test]
    fn peak_dominates_mean_for_all() {
        for w in WorkloadKind::ALL {
            assert!(w.peak_utilization() >= w.mean_utilization(), "{w}");
        }
    }

    #[test]
    fn profiles_are_constructible() {
        for w in WorkloadKind::ALL {
            let p = w.profile();
            assert_eq!(p.nominal_duration(), w.nominal_duration());
        }
    }

    #[test]
    fn resource_requests_are_positive() {
        for w in WorkloadKind::ALL {
            let (cpu, mem) = w.resource_request();
            assert!(cpu > 0 && mem > 0);
        }
    }
}
