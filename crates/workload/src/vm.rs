//! Virtual machines hosting workloads.
//!
//! The paper hosts every workload in a Xen VM so it "can be easily managed
//! by performing VM spawning, pausing and migration among server nodes"
//! (§V.B). A [`Vm`] tracks its workload's progress and completed work; the
//! hypervisor (in `baat-server`) decides where and how fast it runs.

use baat_units::{Fraction, SimDuration, TimeOfDay};

use crate::apps::WorkloadKind;

/// Unique identifier of a VM within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u64);

impl core::fmt::Display for VmId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// Lifecycle state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmState {
    /// Executing on a host.
    Running,
    /// Suspended (e.g. during a power shortfall checkpoint).
    Paused,
    /// In transit between hosts; makes no progress and pays overhead.
    Migrating,
    /// Finished its nominal work.
    Completed,
}

/// Raw dynamic fields of a [`Vm`], for checkpointing.
///
/// `progress` is the *unclamped* accumulator (services keep counting
/// past 1.0), so [`Vm::restore`] reproduces the original bit for bit
/// where [`Vm::progress`] would clamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmSnapshot {
    /// VM identifier.
    pub id: VmId,
    /// The hosted workload.
    pub kind: WorkloadKind,
    /// Lifecycle state.
    pub state: VmState,
    /// Unclamped completed fraction of nominal work.
    pub progress: f64,
    /// Accumulated useful work in core-hours.
    pub work_done: f64,
    /// Number of live migrations performed.
    pub migrations: u32,
}

/// A virtual machine executing one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Vm {
    id: VmId,
    kind: WorkloadKind,
    state: VmState,
    /// Completed fraction of the nominal work (0–1; services keep
    /// accumulating beyond 1).
    progress: f64,
    /// Accumulated useful work in core-hours (the Fig 20 throughput
    /// metric).
    work_done: f64,
    /// Number of live migrations this VM has undergone.
    migrations: u32,
}

impl Vm {
    /// Creates a fresh VM for a workload.
    pub fn new(id: VmId, kind: WorkloadKind) -> Self {
        Self {
            id,
            kind,
            state: VmState::Running,
            progress: 0.0,
            work_done: 0.0,
            migrations: 0,
        }
    }

    /// VM identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The hosted workload.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// Completed fraction of nominal work, clamped to `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.progress.min(1.0)
    }

    /// Accumulated useful work in core-hours.
    pub fn work_done(&self) -> f64 {
        self.work_done
    }

    /// Number of live migrations performed.
    pub fn migrations(&self) -> u32 {
        self.migrations
    }

    /// `true` once the workload finished its nominal work.
    pub fn is_completed(&self) -> bool {
        self.state == VmState::Completed
    }

    /// Current CPU utilization demand given wall-clock time of day.
    ///
    /// Paused, migrating and completed VMs demand nothing.
    pub fn utilization(&self, tod: TimeOfDay) -> Fraction {
        match self.state {
            VmState::Running => self.kind.utilization(self.progress, tod),
            _ => Fraction::ZERO,
        }
    }

    /// Advances the VM one step at the given execution `speed` (1.0 = full
    /// frequency; DVFS scales it down).
    ///
    /// Returns the useful work done this step, in core-hours.
    pub fn advance(&mut self, speed: Fraction, tod: TimeOfDay, dt: SimDuration) -> f64 {
        if self.state != VmState::Running {
            return 0.0;
        }
        let (cores, _) = self.kind.resource_request();
        let util = self.kind.utilization(self.progress, tod).value();
        let work = f64::from(cores) * util * speed.value() * dt.as_hours();
        self.work_done += work;
        let nominal = self.kind.nominal_duration().as_hours();
        self.progress += speed.value() * dt.as_hours() / nominal;
        if !self.kind.is_service() && self.progress >= 1.0 - 1e-9 {
            self.progress = 1.0;
            self.state = VmState::Completed;
        }
        work
    }

    /// Pauses the VM (checkpoint on power shortfall, §V.B).
    pub fn pause(&mut self) {
        if self.state == VmState::Running {
            self.state = VmState::Paused;
        }
    }

    /// Resumes a paused or migrating VM.
    pub fn resume(&mut self) {
        if matches!(self.state, VmState::Paused | VmState::Migrating) {
            self.state = VmState::Running;
        }
    }

    /// Captures the VM's full dynamic state for checkpointing.
    pub fn capture(&self) -> VmSnapshot {
        VmSnapshot {
            id: self.id,
            kind: self.kind,
            state: self.state,
            progress: self.progress,
            work_done: self.work_done,
            migrations: self.migrations,
        }
    }

    /// Rebuilds a VM from a captured snapshot, bit-identical to the
    /// original at capture time.
    pub fn restore(s: VmSnapshot) -> Self {
        Self {
            id: s.id,
            kind: s.kind,
            state: s.state,
            progress: s.progress,
            work_done: s.work_done,
            migrations: s.migrations,
        }
    }

    /// Marks the VM as migrating (no progress until
    /// [`Vm::resume`]).
    pub fn begin_migration(&mut self) {
        if matches!(self.state, VmState::Running | VmState::Paused) {
            self.state = VmState::Migrating;
            self.migrations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(kind: WorkloadKind) -> Vm {
        Vm::new(VmId(1), kind)
    }

    fn full() -> Fraction {
        Fraction::ONE
    }

    #[test]
    fn batch_job_completes_after_nominal_duration() {
        let mut v = vm(WorkloadKind::WordCount); // 1 h nominal
        let dt = SimDuration::from_minutes(10);
        for _ in 0..6 {
            assert!(!v.is_completed());
            v.advance(full(), TimeOfDay::NOON, dt);
        }
        assert!(v.is_completed());
        assert!(v.work_done() > 0.0);
    }

    #[test]
    fn service_never_completes() {
        let mut v = vm(WorkloadKind::WebServing);
        for _ in 0..200 {
            v.advance(full(), TimeOfDay::NOON, SimDuration::from_minutes(30));
        }
        assert!(!v.is_completed());
        assert_eq!(v.state(), VmState::Running);
    }

    #[test]
    fn dvfs_slows_progress_proportionally() {
        let mut fast = vm(WorkloadKind::KMeans);
        let mut slow = vm(WorkloadKind::KMeans);
        let dt = SimDuration::from_minutes(10);
        fast.advance(full(), TimeOfDay::NOON, dt);
        slow.advance(Fraction::HALF, TimeOfDay::NOON, dt);
        assert!((fast.progress() - 2.0 * slow.progress()).abs() < 1e-12);
    }

    #[test]
    fn paused_vm_makes_no_progress() {
        let mut v = vm(WorkloadKind::KMeans);
        v.pause();
        let w = v.advance(full(), TimeOfDay::NOON, SimDuration::from_hours(1));
        assert_eq!(w, 0.0);
        assert_eq!(v.progress(), 0.0);
        v.resume();
        assert_eq!(v.state(), VmState::Running);
    }

    #[test]
    fn migration_counts_and_blocks_progress() {
        let mut v = vm(WorkloadKind::DataAnalytics);
        v.begin_migration();
        assert_eq!(v.state(), VmState::Migrating);
        assert_eq!(v.migrations(), 1);
        assert_eq!(
            v.advance(full(), TimeOfDay::NOON, SimDuration::from_minutes(5)),
            0.0
        );
        v.resume();
        v.begin_migration();
        assert_eq!(v.migrations(), 2);
    }

    #[test]
    fn completed_vm_cannot_migrate() {
        let mut v = vm(WorkloadKind::WordCount);
        while !v.is_completed() {
            v.advance(full(), TimeOfDay::NOON, SimDuration::from_minutes(10));
        }
        v.begin_migration();
        assert_eq!(v.state(), VmState::Completed);
    }

    #[test]
    fn utilization_zero_unless_running() {
        let mut v = vm(WorkloadKind::KMeans);
        assert!(v.utilization(TimeOfDay::NOON).value() > 0.0);
        v.pause();
        assert_eq!(v.utilization(TimeOfDay::NOON), Fraction::ZERO);
    }

    #[test]
    fn work_done_scales_with_cores_and_utilization() {
        let mut heavy = vm(WorkloadKind::SoftwareTesting); // 6 cores, 0.95
        let mut light = vm(WorkloadKind::WordCount); // 2 cores, 0.9 map
        let dt = SimDuration::from_minutes(30);
        let wh = heavy.advance(full(), TimeOfDay::NOON, dt);
        let wl = light.advance(full(), TimeOfDay::NOON, dt);
        assert!(wh > wl * 2.0);
    }
}
