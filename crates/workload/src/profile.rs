//! Workload power/energy profiling and the Table-3 demand classification.
//!
//! BAAT's aging-hiding scheduler classifies each workload's power demand
//! as *Large* (above 50 % of server peak) or *Small*, and its energy
//! demand as *More* or *Less* (run length × power, paper §IV.B.2). The
//! classification drives the Eq-6 weighting-factor selection.

use baat_units::{Fraction, SimDuration, WattHours, Watts};

/// Power-demand class (paper Table 3): *Large* if average load power
/// exceeds 50 % of the server's peak power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerDemand {
    /// Load power above 50 % of server peak.
    Large,
    /// Load power at or below 50 % of server peak.
    Small,
}

/// Energy-demand class (paper Table 3): *More* for long-running /
/// energy-hungry workloads, *Less* otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyDemand {
    /// High total energy request.
    More,
    /// Low total energy request.
    Less,
}

/// The joint Table-3 demand class of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DemandClass {
    /// Power-demand class.
    pub power: PowerDemand,
    /// Energy-demand class.
    pub energy: EnergyDemand,
}

impl core::fmt::Display for DemandClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let p = match self.power {
            PowerDemand::Large => "Large",
            PowerDemand::Small => "Small",
        };
        let e = match self.energy {
            EnergyDemand::More => "More",
            EnergyDemand::Less => "Less",
        };
        write!(f, "power={p}, energy={e}")
    }
}

/// A coarse-granularity power profile for one workload: expected mean
/// utilization, nominal run length, and the derived demand classes.
///
/// The paper notes many datacenter applications provide such profiles
/// (long-running services, periodic/repetitive jobs, §IV.B.2.a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    mean_utilization: Fraction,
    peak_utilization: Fraction,
    nominal_duration: SimDuration,
}

impl PowerProfile {
    /// Creates a profile from mean/peak utilization and nominal duration.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `peak < mean`.
    pub fn new(
        mean_utilization: Fraction,
        peak_utilization: Fraction,
        nominal_duration: SimDuration,
    ) -> Self {
        debug_assert!(
            peak_utilization >= mean_utilization,
            "peak must dominate mean"
        );
        Self {
            mean_utilization,
            peak_utilization,
            nominal_duration,
        }
    }

    /// Expected mean CPU utilization while running.
    pub fn mean_utilization(&self) -> Fraction {
        self.mean_utilization
    }

    /// Expected peak CPU utilization.
    pub fn peak_utilization(&self) -> Fraction {
        self.peak_utilization
    }

    /// Nominal run length at full speed.
    pub fn nominal_duration(&self) -> SimDuration {
        self.nominal_duration
    }

    /// Expected mean load power on a server with the given idle/peak power.
    pub fn expected_power(&self, idle: Watts, peak: Watts) -> Watts {
        idle + (peak - idle) * self.mean_utilization.value()
    }

    /// Expected total energy over the nominal run.
    pub fn expected_energy(&self, idle: Watts, peak: Watts) -> WattHours {
        self.expected_power(idle, peak) * self.nominal_duration
    }

    /// The Table-3 demand class on a server with the given idle/peak power.
    ///
    /// Power is *Large* above 50 % of peak; energy is *More* above the
    /// energy of a half-power four-hour run (the split that separates the
    /// paper's long-running services from short batch jobs).
    pub fn classify(&self, idle: Watts, peak: Watts) -> DemandClass {
        let power = if self.expected_power(idle, peak).as_f64() > 0.5 * peak.as_f64() {
            PowerDemand::Large
        } else {
            PowerDemand::Small
        };
        let energy_threshold = 0.5 * peak.as_f64() * 4.0; // Wh
        let energy = if self.expected_energy(idle, peak).as_f64() > energy_threshold {
            EnergyDemand::More
        } else {
            EnergyDemand::Less
        };
        DemandClass { power, energy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frac(v: f64) -> Fraction {
        Fraction::new(v).unwrap()
    }

    const IDLE: Watts = Watts::new(100.0);
    const PEAK: Watts = Watts::new(300.0);

    #[test]
    fn expected_power_interpolates_idle_to_peak() {
        let p = PowerProfile::new(frac(0.5), frac(0.8), SimDuration::from_hours(2));
        assert_eq!(p.expected_power(IDLE, PEAK), Watts::new(200.0));
    }

    #[test]
    fn heavy_long_job_is_large_more() {
        let p = PowerProfile::new(frac(0.9), frac(1.0), SimDuration::from_hours(6));
        let c = p.classify(IDLE, PEAK);
        assert_eq!(c.power, PowerDemand::Large);
        assert_eq!(c.energy, EnergyDemand::More);
    }

    #[test]
    fn light_short_job_is_small_less() {
        let p = PowerProfile::new(frac(0.1), frac(0.3), SimDuration::from_hours(1));
        let c = p.classify(IDLE, PEAK);
        assert_eq!(c.power, PowerDemand::Small);
        assert_eq!(c.energy, EnergyDemand::Less);
    }

    #[test]
    fn light_long_job_is_small_more() {
        let p = PowerProfile::new(frac(0.2), frac(0.5), SimDuration::from_hours(10));
        let c = p.classify(IDLE, PEAK);
        assert_eq!(c.power, PowerDemand::Small);
        assert_eq!(c.energy, EnergyDemand::More);
    }

    #[test]
    fn heavy_short_job_is_large_less() {
        let p = PowerProfile::new(frac(0.95), frac(1.0), SimDuration::from_minutes(90));
        let c = p.classify(IDLE, PEAK);
        assert_eq!(c.power, PowerDemand::Large);
        assert_eq!(c.energy, EnergyDemand::Less);
    }

    #[test]
    fn power_class_boundary_at_half_peak() {
        // Mean power exactly 50 % of peak is Small (strictly-above rule).
        let p = PowerProfile::new(frac(0.25), frac(0.5), SimDuration::from_hours(1));
        assert_eq!(p.expected_power(IDLE, PEAK), Watts::new(150.0));
        assert_eq!(p.classify(IDLE, PEAK).power, PowerDemand::Small);
    }
}
