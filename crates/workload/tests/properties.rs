//! Property-based tests for workloads and VMs.

use baat_testkit::prelude::*;
use baat_units::{Fraction, SimDuration, TimeOfDay};
use baat_workload::{Vm, VmId, VmState, WorkloadGenerator, WorkloadKind};

fn kind_strategy() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::NutchIndexing),
        Just(WorkloadKind::KMeans),
        Just(WorkloadKind::WordCount),
        Just(WorkloadKind::SoftwareTesting),
        Just(WorkloadKind::WebServing),
        Just(WorkloadKind::DataAnalytics),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Utilization stays a valid fraction at any progress and any hour.
    #[test]
    fn utilization_always_valid(kind in kind_strategy(), p in -0.5f64..2.0, h in 0u32..24, m in 0u32..60) {
        let u = kind.utilization(p, TimeOfDay::from_hm(h, m)).value();
        prop_assert!((0.0..=1.0).contains(&u));
    }

    /// Work done is non-negative and proportional to speed for batch jobs
    /// mid-flight.
    #[test]
    fn work_scales_with_speed(kind in kind_strategy(), speed in 0.1f64..1.0, mins in 1u64..60) {
        let dt = SimDuration::from_minutes(mins);
        let mut fast = Vm::new(VmId(0), kind);
        let mut slow = Vm::new(VmId(1), kind);
        let wf = fast.advance(Fraction::ONE, TimeOfDay::NOON, dt);
        let ws = slow.advance(Fraction::new(speed).unwrap(), TimeOfDay::NOON, dt);
        prop_assert!(wf >= 0.0 && ws >= 0.0);
        prop_assert!(ws <= wf + 1e-9, "slower cannot do more work");
    }

    /// Batch VMs complete within ~2× their nominal duration at a given
    /// constant speed; services never complete.
    #[test]
    fn completion_time_bounded(kind in kind_strategy(), speed in 0.25f64..1.0) {
        let mut vm = Vm::new(VmId(0), kind);
        let dt = SimDuration::from_minutes(5);
        let nominal_steps =
            (kind.nominal_duration().as_minutes() / 5.0 / speed).ceil() as u64 + 2;
        for _ in 0..nominal_steps * 2 {
            vm.advance(Fraction::new(speed).unwrap(), TimeOfDay::NOON, dt);
        }
        if kind.is_service() {
            prop_assert!(!vm.is_completed());
        } else {
            prop_assert!(vm.is_completed(), "{kind} should finish");
        }
    }

    /// Progress is monotone and clamped to [0, 1].
    #[test]
    fn progress_monotone(kind in kind_strategy(), steps in 1usize..100) {
        let mut vm = Vm::new(VmId(0), kind);
        let mut last = 0.0;
        for _ in 0..steps {
            vm.advance(Fraction::ONE, TimeOfDay::NOON, SimDuration::from_minutes(7));
            let p = vm.progress();
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= last);
            last = p;
        }
    }

    /// Daily plans are sorted, within the working window, and have the
    /// requested size.
    #[test]
    fn plans_well_formed(seed in 0u64..500, services in 0usize..5, jobs in 0usize..60) {
        let mut g = WorkloadGenerator::new(seed);
        let plan = g.daily_plan(services, jobs);
        prop_assert_eq!(plan.len(), services + jobs);
        for pair in plan.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
        }
        for a in &plan {
            prop_assert!(a.at >= TimeOfDay::from_hm(8, 30));
            prop_assert!(a.at < TimeOfDay::from_hm(16, 0));
        }
    }

    /// Pause/resume round-trips preserve progress exactly.
    #[test]
    fn pause_resume_preserves_progress(kind in kind_strategy(), steps in 1usize..20) {
        let mut vm = Vm::new(VmId(0), kind);
        for _ in 0..steps {
            vm.advance(Fraction::ONE, TimeOfDay::NOON, SimDuration::from_minutes(3));
        }
        let before = vm.progress();
        vm.pause();
        vm.advance(Fraction::ONE, TimeOfDay::NOON, SimDuration::from_hours(5));
        prop_assert_eq!(vm.progress(), before);
        vm.resume();
        if !vm.is_completed() {
            prop_assert_eq!(vm.state(), VmState::Running);
        }
    }
}
