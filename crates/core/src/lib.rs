//! BAAT — battery anti-aging treatment for green datacenters.
//!
//! The paper's primary contribution (DSN 2015): a power-management
//! framework that *hides*, *slows down* and *plans* battery aging using
//! five telemetry-derived metrics (NAT, CF, PC, DDT, DR). This crate
//! implements the four Table-4 schemes as [`baat_sim::Policy`]
//! implementations plus the analyses built on them:
//!
//! * [`EBuff`] — the aggressive green-energy-buffer baseline ([4, 7]);
//! * [`BaatS`] — aging slowdown via DVFS power capping (Fig 9);
//! * [`BaatH`] — aging hiding via (naive) VM migration;
//! * [`Baat`] — the coordinated scheme: Eq-6 weighted-aging placement
//!   (Fig 8), migration-first slowdown, balance migrations, and optional
//!   planned aging (Eq 7, §IV.D);
//! * [`Scheme`] — the Table-4 enumeration, buildable into boxed policies;
//! * [`estimate_lifetime`] — damage-rate extrapolation to end-of-life
//!   (Figs 14, 15);
//! * [`LowSocSummary`] / [`availability_improvement`] /
//!   [`soc_distribution`] — the §VI.E availability analyses (Figs 18,
//!   19).
//!
//! # Examples
//!
//! Run one cloudy prototype day under full BAAT and compare against
//! e-Buff:
//!
//! ```
//! use baat_core::Scheme;
//! use baat_sim::{run_simulation, SimConfig};
//! use baat_solar::Weather;
//!
//! let config = SimConfig::prototype_day(Weather::Cloudy, 42);
//! let ebuff = run_simulation(config.clone(), &mut Scheme::EBuff.build())?;
//! let baat = run_simulation(config, &mut Scheme::Baat.build())?;
//! assert!(baat.total_work > 0.0 && ebuff.total_work > 0.0);
//! # Ok::<(), baat_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod availability;
mod lifetime;
mod policy;
mod scheme;

pub use availability::{
    availability_improvement, critical_improvement, soc_distribution, worst_critical_duration,
    LowSocSummary, EMERGENCY_RESERVE,
};
pub use lifetime::{estimate_lifetime, weather_plan_for_sunshine, LifetimeEstimate};
pub use policy::{
    best_migration_target, classify_workload, heaviest_movable_vm, node_weighted_aging,
    rank_by_weighted_aging, Baat, BaatConfig, BaatH, BaatS, EBuff, PlannedAging,
    SlowdownThresholds,
};
pub use scheme::Scheme;
