//! The four battery power-management schemes of paper Table 4.

mod baat_full;
mod baat_h;
mod baat_s;
pub(crate) mod common;
mod e_buff;

pub use baat_full::{Baat, BaatConfig, PlannedAging};
pub use baat_h::BaatH;
pub use baat_s::{BaatS, SlowdownThresholds};
pub use common::{
    best_migration_target, classify_workload, heaviest_movable_vm, node_weighted_aging,
    rank_by_weighted_aging,
};
pub use e_buff::EBuff;
