//! The full BAAT scheme (paper Table 4): "coordinate hiding and slowing
//! down techniques to dynamically manage battery aging", optionally with
//! planned aging (§IV.D).
//!
//! Each control interval BAAT:
//!
//! 1. runs the Fig 9 slowdown check per node — but, holding the holistic
//!    weighted-aging ranking, it *first* tries to migrate the heaviest
//!    movable VM to the least-aged viable node and only falls back to
//!    DVFS when no placement exists ("we preferentially use VM migration
//!    to reduce performance penalty");
//! 2. runs the Fig 8 aging-hiding balance — when the weighted-aging gap
//!    between the worst and best node exceeds a threshold, load moves
//!    from the fast-aging battery to the slow-aging one (rate-limited to
//!    avoid migration churn);
//! 3. under planned aging, substitutes `1 − DoD_goal` (Eq 7) for the
//!    40 % deep-discharge line so the battery is used exactly hard
//!    enough to wear out at the datacenter's end-of-life.

use baat_metrics::{dod_goal, PlannedAgingInputs};
use baat_obs::{Counter, Obs};
use baat_server::ServerPowerModel;
use baat_sim::{Action, ControlCtx, NodeView, PlacementSpec, Policy, SystemView};
use baat_units::{AmpHours, Soc};
use baat_workload::{DemandClass, EnergyDemand, PowerDemand, VmId, WorkloadKind};

use crate::policy::baat_s::SlowdownThresholds;
use crate::policy::common::{
    best_migration_target, classify_workload, heaviest_movable_vm, rank_by_weighted_aging,
};

/// Planned-aging configuration (§IV.D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedAging {
    /// Days from battery installation to the datacenter's end-of-life.
    pub service_days: f64,
    /// Prior for full cycles per operating day, used until the usage log
    /// holds at least a day of history; after that `Cycle_plan` is
    /// "estimated base on the battery usage log" (the paper's wording)
    /// from the observed Ah throughput.
    pub cycles_per_day: f64,
}

/// Configuration of the full BAAT policy.
#[derive(Debug, Clone, PartialEq)]
pub struct BaatConfig {
    /// Slowdown thresholds (Fig 9).
    pub thresholds: SlowdownThresholds,
    /// Server class used for workload power profiling.
    pub server_power: ServerPowerModel,
    /// Relative weighted-aging gap (`worst/best − 1`) that triggers a
    /// balancing migration.
    pub balance_gap: f64,
    /// Control intervals between balancing migrations.
    pub balance_cooldown: u32,
    /// Minimum SoC a migration target must hold.
    pub min_target_soc: f64,
    /// Optional planned aging.
    pub planned: Option<PlannedAging>,
}

impl Default for BaatConfig {
    fn default() -> Self {
        Self {
            thresholds: SlowdownThresholds::default(),
            server_power: ServerPowerModel::prototype(),
            balance_gap: 0.12,
            balance_cooldown: 5,
            min_target_soc: 0.45,
            planned: None,
        }
    }
}

/// The demand class used for ranking when no specific workload is in
/// hand (balancing migrations).
const BALANCE_CLASS: DemandClass = DemandClass {
    power: PowerDemand::Large,
    energy: EnergyDemand::More,
};

/// Per-rule decision counters for full BAAT, inert unless attached to an
/// enabled [`Obs`].
#[derive(Debug, Clone, Default)]
struct BaatCounters {
    /// Fig 9 slowdown triggers answered with a migration.
    slowdown_migrations: Counter,
    /// Supply-following DVFS adjustments issued.
    dvfs_adjustments: Counter,
    /// Fig 8 balance migrations issued.
    balance_migrations: Counter,
    /// Migrations withheld for one interval because the engine rejected
    /// the same VM's move last interval (backoff on feedback).
    rejected_backoffs: Counter,
}

/// The coordinated BAAT policy.
#[derive(Debug, Clone, Default)]
pub struct Baat {
    config: BaatConfig,
    cooldown: u32,
    counters: BaatCounters,
}

impl Baat {
    /// Creates the policy with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the policy with a custom configuration.
    pub fn with_config(config: BaatConfig) -> Self {
        Self {
            config,
            cooldown: 0,
            counters: BaatCounters::default(),
        }
    }

    /// Attaches per-rule decision counters (`policy.baat.*`) to `obs`.
    /// Counting never changes what the policy decides.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.counters = BaatCounters {
            slowdown_migrations: obs.counter("policy.baat.slowdown_migrations"),
            dvfs_adjustments: obs.counter("policy.baat.dvfs_adjustments"),
            balance_migrations: obs.counter("policy.baat.balance_migrations"),
            rejected_backoffs: obs.counter("policy.baat.rejected_backoffs"),
        };
    }

    /// Creates the policy with planned aging enabled.
    pub fn with_planned_aging(planned: PlannedAging) -> Self {
        Self::with_config(BaatConfig {
            planned: Some(planned),
            ..BaatConfig::default()
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &BaatConfig {
        &self.config
    }

    /// Picks the fastest DVFS level whose predicted server power fits the
    /// node's estimated power supply: its solar share plus the remaining
    /// battery energy *rationed over the rest of the operating day*, so
    /// the battery neither trips the cutoff nor strands reserve (paper's
    /// 2-minute reserve rule [42] becomes a 5 % SoC margin).
    fn fit_dvfs_level(
        &self,
        view: &SystemView,
        node: &NodeView,
        defend_line: Option<Soc>,
    ) -> baat_server::DvfsLevel {
        use baat_server::DvfsLevel;
        let total_demand = view.total_demand().as_f64();
        let solar_share = if total_demand > 0.0 {
            view.solar.as_f64() * node.server_power.as_f64() / total_demand
        } else {
            view.solar.as_f64() / view.nodes.len().max(1) as f64
        };
        // Ration usable stored energy over the next stretch of the
        // operating day (the prototype day ends at 18:30). A 3-hour
        // horizon avoids over-throttling a full battery in the morning
        // while still tapering demand as the reserve shrinks.
        // Below the deep-discharge line the controller defends the line
        // itself (holding the battery just under it rations almost
        // nothing), spreading the few percent of slack over a long
        // horizon; above the line only the 2-minute emergency margin is
        // held back and the horizon stays short to keep throughput up.
        let (reserve, max_horizon) = match defend_line {
            Some(line) => (
                (line.value() - 0.13).max(node.soc_floor.value() + 0.05),
                7.0,
            ),
            None => (node.soc_floor.value() + 0.05, 3.0),
        };
        let hours_left = (18.5 - view.tod.as_fractional_hours()).clamp(0.5, max_horizon);
        let usable_soc = (node.soc.value() - reserve).max(0.0);
        let battery_budget = usable_soc * node.battery_capacity_wh / hours_left * 0.92;
        let supply = solar_share + battery_budget;
        let idle = self.config.server_power.idle().as_f64();
        let dynamic = self.config.server_power.peak().as_f64() - idle;
        let util = node.utilization.value();
        for level in DvfsLevel::ALL {
            let predicted = idle + dynamic * util * level.power_factor();
            if predicted <= supply {
                return level;
            }
        }
        DvfsLevel::P4
    }

    /// The deep-discharge SoC line for one node: the static threshold, or
    /// `1 − DoD_goal` under planned aging.
    fn deep_soc_for(&self, node: &NodeView, elapsed_days: f64) -> Soc {
        let Some(planned) = self.config.planned else {
            return self.config.thresholds.deep_soc;
        };
        let capacity = AmpHours::new(node.battery_capacity_ah * node.capacity_fraction.max(0.5));
        // Reconstruct throughputs from the lifetime NAT: NAT · CAP_nom.
        let lifetime_throughput = AmpHours::new(node.battery_lifetime_throughput_ah);
        let used = AmpHours::new(node.lifetime_metrics.nat * lifetime_throughput.as_f64());
        let remaining_days = (planned.service_days - elapsed_days).max(0.0);
        // Cycle_plan from the usage log once it has matured (≥ 1 day of
        // history and a plausible rate), else the configured prior.
        let observed = if elapsed_days >= 1.0 {
            Some(used.as_f64() / node.battery_capacity_ah / elapsed_days)
        } else {
            None
        };
        let cycles_per_day = observed
            .filter(|c| *c > 0.05)
            .unwrap_or(planned.cycles_per_day);
        let inputs = PlannedAgingInputs {
            total_throughput: lifetime_throughput,
            used_throughput: used,
            capacity,
            planned_cycles: remaining_days * cycles_per_day,
        };
        match dod_goal(&inputs) {
            Some(goal) => goal.to_soc(),
            None => self.config.thresholds.deep_soc,
        }
    }
}

impl Policy for Baat {
    fn name(&self) -> &'static str {
        "BAAT"
    }

    fn control(&mut self, view: &SystemView, ctx: &ControlCtx<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let mut migrated_vms = Vec::new();
        let elapsed_days = view.now.day() as f64;
        let t = self.config.thresholds;
        // Back off VMs whose migration the engine rejected last interval
        // (failed target, VM already in flight): re-requesting the same
        // move would fail identically, so fall through to DVFS this round
        // and re-evaluate next interval.
        let blocked: Vec<VmId> = ctx.rejected_migrations().collect();

        // Slowdown pass (Fig 9), migration-first.
        for node in &view.nodes {
            if !node.online {
                continue;
            }
            let deep_soc = self.deep_soc_for(node, elapsed_days);
            let ddt = node.window_metrics.ddt.value();
            let dr = node.window_metrics.dr.mean_c_rate;
            let triggered = node.soc < deep_soc && (ddt > t.ddt || dr > t.dr_c_rate);
            if triggered {
                let candidate = heaviest_movable_vm(node);
                let migration = candidate.and_then(|vm| {
                    if blocked.contains(&vm.id) {
                        self.counters.rejected_backoffs.inc();
                        return None;
                    }
                    let class = classify_workload(vm.kind, &self.config.server_power);
                    best_migration_target(
                        view,
                        node.node,
                        vm.kind,
                        class,
                        self.config.min_target_soc,
                    )
                    .map(|target| (vm.id, target))
                });
                if let Some((vm, target)) = migration {
                    self.counters.slowdown_migrations.inc();
                    migrated_vms.push(vm);
                    actions.push(Action::Migrate { vm, target });
                }
            }
            // Supply-following power cap, applied continuously: pick the
            // fastest DVFS level whose predicted demand fits the node's
            // solar share plus a reserve-preserving battery draw —
            // throttle exactly as much as the shortfall requires, and
            // release as soon as supply returns. Below the deep line the
            // battery reserve is defended aggressively.
            let defend = (node.soc < deep_soc).then_some(deep_soc);
            let level = self.fit_dvfs_level(view, node, defend);
            if level != node.dvfs {
                self.counters.dvfs_adjustments.inc();
                actions.push(Action::SetDvfs {
                    node: node.node,
                    level,
                });
            }
        }

        // Aging-hiding balance pass (Fig 8), rate-limited.
        if self.cooldown > 0 {
            self.cooldown -= 1;
        } else if view.nodes.len() >= 2 {
            let ranked = rank_by_weighted_aging(view, BALANCE_CLASS);
            let (Some(&first), Some(&last)) = (ranked.first(), ranked.last()) else {
                return actions;
            };
            let best = &view.nodes[first];
            let worst = &view.nodes[last];
            let worst_w = crate::policy::common::node_weighted_aging(worst, BALANCE_CLASS);
            let best_w = crate::policy::common::node_weighted_aging(best, BALANCE_CLASS);
            let gap = if best_w > 1e-6 {
                worst_w / best_w - 1.0
            } else if worst_w > 0.02 {
                // A pristine best node and a measurably aged worst node is
                // the clearest imbalance of all.
                f64::INFINITY
            } else {
                0.0
            };
            if gap > self.config.balance_gap && worst.online {
                if let Some(vm) = heaviest_movable_vm(worst) {
                    if blocked.contains(&vm.id) {
                        self.counters.rejected_backoffs.inc();
                    } else if !migrated_vms.contains(&vm.id) {
                        let class = classify_workload(vm.kind, &self.config.server_power);
                        if let Some(target) = best_migration_target(
                            view,
                            worst.node,
                            vm.kind,
                            class,
                            self.config.min_target_soc,
                        ) {
                            self.counters.balance_migrations.inc();
                            actions.push(Action::Migrate { vm: vm.id, target });
                            self.cooldown = self.config.balance_cooldown;
                        }
                    }
                }
            }
        }

        actions
    }

    fn placement_order(&mut self, kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        // Fig 8: profile the workload, rank nodes by Eq-6 weighted aging.
        let class = classify_workload(kind, &self.config.server_power);
        rank_by_weighted_aging(view, class)
    }

    fn placement_spec(&self) -> PlacementSpec {
        PlacementSpec::WeightedAging {
            server_power: self.config.server_power,
        }
    }

    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.cooldown)]
    }

    fn load_state(&mut self, state: &[u64]) {
        if let Some(&cooldown) = state.first() {
            self.cooldown = cooldown as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::common::tests_support::{metrics, node, plain_node, view_of};
    use baat_metrics::{AgingMetrics, DischargeRate, PartialCycling};
    use baat_server::DvfsLevel;
    use baat_sim::VmView;
    use baat_units::Fraction;
    use baat_workload::{VmId, VmState};

    fn stressed_metrics(ddt: f64, dr: f64) -> AgingMetrics {
        AgingMetrics {
            nat: 0.2,
            cf: Some(0.85),
            pc: PartialCycling {
                share_by_range: [0.0, 0.0, 0.2, 0.8],
            },
            ddt: Fraction::saturating(ddt),
            dr: DischargeRate {
                peak_c_rate: dr,
                mean_c_rate: dr,
            },
        }
    }

    fn stressed_loaded_node(i: usize) -> baat_sim::NodeView {
        let mut n = node(i, stressed_metrics(0.3, 0.4), 0.25, (8, 16));
        n.window_metrics = stressed_metrics(0.3, 0.4);
        n.vms = vec![VmView {
            id: VmId(42),
            kind: WorkloadKind::KMeans,
            state: VmState::Running,
            progress: 0.3,
        }];
        n
    }

    #[test]
    fn prefers_migration_over_dvfs() {
        let mut p = Baat::new();
        let v = view_of(vec![stressed_loaded_node(0), plain_node(1, 0.9)]);
        let actions = p.control(&v, &ControlCtx::bootstrap());
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Migrate {
                    vm: VmId(42),
                    target: 1
                }
            )),
            "expected migration first, got {actions:?}"
        );
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, Action::SetDvfs { node: 0, .. })),
            "DVFS should be the fallback only"
        );
    }

    #[test]
    fn falls_back_to_dvfs_when_no_target() {
        let mut p = Baat::new();
        let mut stressed = stressed_loaded_node(0);
        // Night-time scarcity: no solar, battery nearly unable to deliver.
        stressed.battery_available = baat_units::Watts::new(40.0);
        let mut other = plain_node(1, 0.9);
        other.free_resources = (0, 0); // nowhere to go
        let mut v = view_of(vec![stressed, other]);
        v.solar = baat_units::Watts::ZERO;
        let actions = p.control(&v, &ControlCtx::bootstrap());
        assert!(
            actions.iter().any(
                |a| matches!(a, Action::SetDvfs { node: 0, level } if *level != DvfsLevel::P0)
            ),
            "expected a throttle, got {actions:?}"
        );
    }

    #[test]
    fn supply_aware_throttle_is_proportional() {
        // With generous supply the fitted level stays fast even while
        // triggered; with scarce supply it goes deep.
        let p = Baat::new();
        let mut rich = stressed_loaded_node(0);
        rich.battery_available = baat_units::Watts::new(400.0);
        let v_rich = view_of(vec![rich.clone(), plain_node(1, 0.9)]);
        let fast = p.fit_dvfs_level(&v_rich, &rich, None);

        let mut poor = rich;
        poor.battery_available = baat_units::Watts::new(10.0);
        let mut v_poor = view_of(vec![poor.clone(), plain_node(1, 0.9)]);
        v_poor.solar = baat_units::Watts::ZERO;
        let slow = p.fit_dvfs_level(&v_poor, &poor, Some(Soc::DEEP_DISCHARGE_THRESHOLD));
        assert!(
            fast < slow,
            "fast {fast} should be a higher P-state than {slow}"
        );
    }

    #[test]
    fn balances_aging_variation_with_cooldown() {
        let mut p = Baat::new();
        let mut worst = node(0, metrics(400.0, 0.3), 0.8, (8, 16));
        worst.vms = vec![VmView {
            id: VmId(7),
            kind: WorkloadKind::DataAnalytics,
            state: VmState::Running,
            progress: 0.2,
        }];
        let best = plain_node(1, 0.95);
        let v = view_of(vec![worst, best]);
        let first = p.control(&v, &ControlCtx::bootstrap());
        assert!(first.iter().any(|a| matches!(
            a,
            Action::Migrate {
                vm: VmId(7),
                target: 1
            }
        )));
        // Cooldown suppresses immediate re-balancing.
        let second = p.control(&v, &ControlCtx::bootstrap());
        assert!(!second.iter().any(|a| matches!(a, Action::Migrate { .. })));
    }

    #[test]
    fn balanced_cluster_recovers_dvfs() {
        // Supply is plentiful: the supply-following cap releases the
        // throttle straight back to full speed.
        let mut p = Baat::new();
        let mut n = plain_node(0, 0.9);
        n.dvfs = DvfsLevel::P2;
        let v = view_of(vec![n, plain_node(1, 0.9)]);
        let actions = p.control(&v, &ControlCtx::bootstrap());
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetDvfs {
                node: 0,
                level: DvfsLevel::P0
            }
        )));
    }

    #[test]
    fn placement_ranks_by_weighted_aging() {
        let mut p = Baat::new();
        let v = view_of(vec![
            node(0, metrics(300.0, 0.3), 0.9, (8, 16)),
            node(1, metrics(10.0, 0.9), 0.9, (8, 16)),
        ]);
        let order = p.placement_order(WorkloadKind::SoftwareTesting, &v);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn planned_aging_deepens_the_threshold() {
        // A short service horizon yields a deep DoD goal, i.e. a *lower*
        // deep-SoC line than the default 40 %.
        let p = Baat::with_planned_aging(PlannedAging {
            service_days: 400.0,
            cycles_per_day: 1.0,
        });
        let n = plain_node(0, 0.5);
        let deep = p.deep_soc_for(&n, 0.0);
        assert!(
            deep.value() < 0.40,
            "planned deep line {deep} should sit below the static 40 %"
        );
    }

    #[test]
    fn planned_aging_tightens_near_end_of_horizon() {
        let p = Baat::with_planned_aging(PlannedAging {
            service_days: 1200.0,
            cycles_per_day: 1.0,
        });
        let n = plain_node(0, 0.5);
        let early = p.deep_soc_for(&n, 0.0);
        let late = p.deep_soc_for(&n, 1100.0);
        // Fewer remaining cycles → deeper allowed DoD → lower SoC line.
        assert!(late < early, "late {late} vs early {early}");
    }

    #[test]
    fn planned_cycles_follow_the_usage_log() {
        // Two nodes, same horizon, different observed cycling rates: the
        // heavier-cycled battery gets fewer remaining Ah per cycle, i.e.
        // a shallower DoD goal (higher deep-SoC line).
        let p = Baat::with_planned_aging(PlannedAging {
            service_days: 800.0,
            cycles_per_day: 1.0,
        });
        let light = node(0, metrics(2_000.0, 0.7), 0.5, (8, 16));
        let heavy = node(1, metrics(9_000.0, 0.7), 0.5, (8, 16));
        let elapsed = 100.0;
        let light_line = p.deep_soc_for(&light, elapsed);
        let heavy_line = p.deep_soc_for(&heavy, elapsed);
        assert!(
            heavy_line > light_line,
            "heavily cycled battery must be protected sooner: {heavy_line} vs {light_line}"
        );
    }

    #[test]
    fn exhausted_horizon_falls_back_to_static_threshold() {
        let p = Baat::with_planned_aging(PlannedAging {
            service_days: 10.0,
            cycles_per_day: 1.0,
        });
        let n = plain_node(0, 0.5);
        let deep = p.deep_soc_for(&n, 20.0);
        assert_eq!(deep, SlowdownThresholds::default().deep_soc);
    }
}
