//! BAAT-h (paper Table 4): "only use aging-aware VM migration technique
//! to hide battery aging variation".
//!
//! BAAT-h reacts to aging variation by migrating load off the
//! fastest-aging battery node — but, as §VI.B notes, "it lacks the
//! holistic battery node aging information (e.g., weighted aging metrics)
//! and the migration is unaware [of] the aging state of other battery
//! nodes, which make the migration become random and low efficiency".
//! Accordingly this policy detects the worst node by raw throughput (NAT)
//! only and picks migration targets round-robin, not by weighted rank —
//! reproducing the overhead the paper measures.

use baat_obs::{Counter, Obs};
use baat_sim::{Action, ControlCtx, PlacementSpec, Policy, SystemView};
use baat_workload::WorkloadKind;

/// Relative NAT excess over the mean that marks a node as fast-aging.
const NAT_IMBALANCE_FACTOR: f64 = 1.30;

/// Control intervals to wait between migrations (the prototype cannot
/// usefully re-migrate faster than VMs transfer).
const MIGRATION_COOLDOWN: u32 = 20;

/// Per-rule decision counters for BAAT-h, inert unless attached to an
/// enabled [`Obs`].
#[derive(Debug, Clone, Default)]
struct BaatHCounters {
    /// Hiding migrations issued off the fastest-aging node.
    migrations: Counter,
    /// VMs skipped for one interval because their migration was rejected
    /// last interval (backoff on engine feedback).
    rejected_backoffs: Counter,
}

/// The hiding-only policy.
#[derive(Debug, Clone, Default)]
pub struct BaatH {
    cooldown: u32,
    counters: BaatHCounters,
}

impl BaatH {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches per-rule decision counters (`policy.baat_h.*`) to `obs`.
    /// Counting never changes what the policy decides.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.counters = BaatHCounters {
            migrations: obs.counter("policy.baat_h.migrations"),
            rejected_backoffs: obs.counter("policy.baat_h.rejected_backoffs"),
        };
    }
}

impl Policy for BaatH {
    fn name(&self) -> &'static str {
        "BAAT-h"
    }

    fn control(&mut self, view: &SystemView, ctx: &ControlCtx<'_>) -> Vec<Action> {
        // Back off VMs whose migration the engine rejected last interval:
        // re-requesting the identical move would fail the same way.
        let blocked: Vec<baat_workload::VmId> = ctx.rejected_migrations().collect();
        let n = view.nodes.len();
        if n < 2 {
            return Vec::new();
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Vec::new();
        }
        // Hiding is a placement/consolidation activity (paper Fig 8: it
        // triggers "when adding new jobs or performing workload
        // consolidation"), not crisis response: while the cluster's
        // batteries are strained, shuffling VMs only spreads the deep
        // discharge around, so wait for a healthy moment.
        let mean_soc: f64 = view.nodes.iter().map(|v| v.soc.value()).sum::<f64>() / n as f64;
        if mean_soc < 0.55 {
            return Vec::new();
        }
        // Hiding reacts to *usage* variation: NAT (Eq 1) is the one aging
        // signal this simplified scheme consults — no charge factor, no
        // partial cycling, no workload power profiling, no coordination
        // with slowdown (all of which full BAAT adds).
        let mean_nat: f64 = view
            .nodes
            .iter()
            .map(|v| v.lifetime_metrics.nat)
            .sum::<f64>()
            / n as f64;
        if mean_nat <= 0.0 {
            return Vec::new();
        }
        let worst = view
            .nodes
            .iter()
            .filter(|node| node.online)
            .max_by(|a, b| a.lifetime_metrics.nat.total_cmp(&b.lifetime_metrics.nat));
        let Some(worst) = worst else {
            return Vec::new();
        };
        if worst.lifetime_metrics.nat < mean_nat * NAT_IMBALANCE_FACTOR {
            return Vec::new();
        }
        // Candidate VMs, heaviest first: if the big one does not fit
        // anywhere, a smaller one still sheds some load.
        let mut movable: Vec<_> = worst
            .vms
            .iter()
            .filter(|vm| vm.state == baat_workload::VmState::Running && !vm.kind.is_service())
            .collect();
        movable.sort_by(|a, b| {
            let w = |v: &&baat_sim::VmView| {
                let (c, _) = v.kind.resource_request();
                v.kind.mean_utilization().value() * f64::from(c)
            };
            w(b).total_cmp(&w(a))
        });
        // Target: the least-used battery with room. Without the weighted
        // metrics this can still pick a node whose CF/PC history or the
        // incoming workload's power profile make it a poor host — the
        // low-efficiency migration §VI.B critiques.
        for vm in movable {
            if blocked.contains(&vm.id) {
                self.counters.rejected_backoffs.inc();
                continue;
            }
            let request = vm.kind.resource_request();
            let target = view
                .nodes
                .iter()
                .filter(|node| {
                    node.node != worst.node
                        && node.online
                        && node.free_resources.0 >= request.0
                        && node.free_resources.1 >= request.1
                })
                .min_by(|a, b| a.lifetime_metrics.nat.total_cmp(&b.lifetime_metrics.nat));
            if let Some(target) = target {
                self.cooldown = MIGRATION_COOLDOWN;
                self.counters.migrations.inc();
                return vec![Action::Migrate {
                    vm: vm.id,
                    target: target.node,
                }];
            }
        }
        Vec::new()
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        // Placement prefers lower lifetime NAT (partially aging-aware).
        let mut order: Vec<usize> = (0..view.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            view.nodes[a]
                .lifetime_metrics
                .nat
                .total_cmp(&view.nodes[b].lifetime_metrics.nat)
        });
        order
    }

    fn placement_spec(&self) -> PlacementSpec {
        PlacementSpec::LifetimeNat
    }

    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.cooldown)]
    }

    fn load_state(&mut self, state: &[u64]) {
        if let Some(&cooldown) = state.first() {
            self.cooldown = cooldown as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::common::tests_support::{metrics, node, view_of};
    use baat_sim::VmView;
    use baat_workload::{VmId, VmState, WorkloadKind};

    fn loaded(i: usize, discharged: f64, soc: f64) -> baat_sim::NodeView {
        let mut n = node(i, metrics(discharged, soc.max(0.05)), soc, (8, 16));
        n.vms = vec![VmView {
            id: VmId(i as u64 * 10),
            kind: WorkloadKind::KMeans,
            state: VmState::Running,
            progress: 0.4,
        }];
        n
    }

    #[test]
    fn migrates_off_the_highest_throughput_node() {
        let mut p = BaatH::new();
        let v = view_of(vec![
            loaded(0, 300.0, 0.7), // most-cycled battery
            loaded(1, 50.0, 0.8),
            loaded(2, 40.0, 0.8),
        ]);
        let actions = p.control(&v, &ControlCtx::bootstrap());
        assert_eq!(actions.len(), 1);
        let Action::Migrate { vm, target } = actions[0] else {
            panic!("expected migration, got {actions:?}");
        };
        assert_eq!(vm, VmId(0));
        assert_ne!(target, 0);
    }

    #[test]
    fn target_ignores_everything_but_nat() {
        // Node 1 has the lowest throughput but a nearly drained battery;
        // node 2 is charged. NAT-only targeting still loads node 1 — the
        // low-efficiency migration the paper critiques.
        let mut p = BaatH::new();
        let v = view_of(vec![
            loaded(0, 300.0, 0.8),
            loaded(1, 20.0, 0.30),
            loaded(2, 60.0, 0.95),
        ]);
        let actions = p.control(&v, &ControlCtx::bootstrap());
        let Action::Migrate { target, .. } = actions[0] else {
            panic!("expected migration");
        };
        assert_eq!(target, 1, "NAT-only targeting ignores battery charge");
    }

    #[test]
    fn balanced_cluster_needs_no_migration() {
        let mut p = BaatH::new();
        let v = view_of(vec![
            loaded(0, 100.0, 0.7),
            loaded(1, 98.0, 0.7),
            loaded(2, 102.0, 0.7),
        ]);
        assert!(p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }

    #[test]
    fn cooldown_rate_limits_migrations() {
        let mut p = BaatH::new();
        let v = view_of(vec![loaded(0, 300.0, 0.7), loaded(1, 10.0, 0.8)]);
        assert_eq!(p.control(&v, &ControlCtx::bootstrap()).len(), 1);
        assert!(
            p.control(&v, &ControlCtx::bootstrap()).is_empty(),
            "cooldown must suppress churn"
        );
    }

    #[test]
    fn no_movable_vm_means_no_action() {
        let mut p = BaatH::new();
        let mut worst = node(0, metrics(300.0, 0.7), 0.7, (8, 16));
        worst.vms.clear();
        let v = view_of(vec![worst, loaded(1, 10.0, 0.8)]);
        assert!(p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }

    #[test]
    fn single_deep_node_without_imbalance_is_left_alone() {
        // Deep SoC alone is the slowdown scheme's business, not hiding's.
        let mut p = BaatH::new();
        let v = view_of(vec![loaded(0, 100.0, 0.1), loaded(1, 99.0, 0.9)]);
        assert!(p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }

    #[test]
    fn placement_prefers_low_nat() {
        let mut p = BaatH::new();
        let v = view_of(vec![
            loaded(0, 200.0, 0.8),
            loaded(1, 10.0, 0.8),
            loaded(2, 100.0, 0.8),
        ]);
        assert_eq!(p.placement_order(WorkloadKind::KMeans, &v), vec![1, 2, 0]);
    }

    #[test]
    fn single_node_cluster_never_migrates() {
        let mut p = BaatH::new();
        let v = view_of(vec![loaded(0, 300.0, 0.2)]);
        assert!(p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }
}
