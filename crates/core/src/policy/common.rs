//! Shared decision helpers for the Table-4 policies.

use baat_metrics::weighted_aging;
use baat_server::ServerPowerModel;
use baat_sim::{NodeView, SystemView, VmView};
use baat_workload::{DemandClass, VmState, WorkloadKind};

/// Classifies a workload's Table-3 demand class on the configured server
/// class (paper §IV.B.2.a: power profiling).
pub fn classify_workload(kind: WorkloadKind, server: &ServerPowerModel) -> DemandClass {
    kind.profile().classify(server.idle(), server.peak())
}

/// The Eq-6 weighted aging of one node for a prospective demand class,
/// computed over lifetime metrics.
pub fn node_weighted_aging(node: &NodeView, class: DemandClass) -> f64 {
    weighted_aging(&node.lifetime_metrics, class)
}

/// Orders all nodes by ascending Eq-6 weighted aging (the Fig 8 placement
/// rank): least-aged battery first. Degraded nodes (stale telemetry —
/// their metrics are last-known-good, not current) sort after every
/// healthy node regardless of apparent aging.
pub fn rank_by_weighted_aging(view: &SystemView, class: DemandClass) -> Vec<usize> {
    let mut order: Vec<usize> = view.nodes.iter().map(|n| n.node).collect();
    order.sort_by(|&a, &b| {
        let (na, nb) = (&view.nodes[a], &view.nodes[b]);
        na.degraded
            .cmp(&nb.degraded)
            .then(node_weighted_aging(na, class).total_cmp(&node_weighted_aging(nb, class)))
    });
    order
}

/// Picks the best migration target for a VM currently on `source`:
/// the lowest-weighted-aging node that is online, not degraded, has the
/// resources, and has a comfortably charged battery. Returns `None` when no node
/// qualifies (the Fig 9 "VM cannot be migrated due to resource
/// constraints" branch).
pub fn best_migration_target(
    view: &SystemView,
    source: usize,
    kind: WorkloadKind,
    class: DemandClass,
    min_target_soc: f64,
) -> Option<usize> {
    let request = kind.resource_request();
    rank_by_weighted_aging(view, class)
        .into_iter()
        .find(|&candidate| {
            if candidate == source {
                return false;
            }
            let node = &view.nodes[candidate];
            node.online
                && !node.degraded
                && node.soc.value() >= min_target_soc
                && node.free_resources.0 >= request.0
                && node.free_resources.1 >= request.1
        })
}

/// Selects the most demanding movable (running, non-service) VM on a
/// node — the one whose departure sheds the most battery load.
pub fn heaviest_movable_vm(node: &NodeView) -> Option<&VmView> {
    node.vms
        .iter()
        .filter(|vm| vm.state == VmState::Running && !vm.kind.is_service())
        .max_by(|a, b| {
            let (ac, _) = a.kind.resource_request();
            let (bc, _) = b.kind.resource_request();
            let au = a.kind.mean_utilization().value() * f64::from(ac);
            let bu = b.kind.mean_utilization().value() * f64::from(bc);
            au.total_cmp(&bu)
        })
}

/// Test scaffolding shared by the policy unit tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use baat_battery::UsageAccumulator;
    use baat_metrics::{AgingMetrics, BatteryRatings};
    use baat_server::DvfsLevel;
    use baat_sim::{NodeView, SystemView};
    use baat_solar::Weather;
    use baat_units::{
        AmpHours, Amperes, Fraction, SimDuration, SimInstant, Soc, TimeOfDay, Volts, WattHours,
        Watts,
    };

    pub(crate) fn ratings() -> BatteryRatings {
        BatteryRatings {
            capacity: AmpHours::new(35.0),
            lifetime_throughput: AmpHours::new(17_500.0),
        }
    }

    /// Builds metrics with the given discharged Ah at the given SoC band.
    pub(crate) fn metrics(discharged_ah: f64, at_soc: f64) -> AgingMetrics {
        let mut acc = UsageAccumulator::default();
        if discharged_ah > 0.0 {
            let dt = SimDuration::from_hours(1);
            acc.record(
                Soc::new(at_soc).unwrap(),
                Amperes::new(discharged_ah),
                Amperes::new(discharged_ah) * dt,
                AmpHours::ZERO,
                Volts::new(12.0) * Amperes::new(discharged_ah) * dt,
                WattHours::ZERO,
                dt,
            );
        }
        AgingMetrics::from_accumulator(&acc, &ratings())
    }

    pub(crate) fn node(i: usize, m: AgingMetrics, soc: f64, free: (u32, u32)) -> NodeView {
        NodeView {
            node: i,
            soc: Soc::new(soc).unwrap(),
            window_metrics: m,
            lifetime_metrics: m,
            damage: 0.0,
            capacity_fraction: 1.0,
            server_power: Watts::new(100.0),
            utilization: Fraction::HALF,
            dvfs: DvfsLevel::P0,
            online: true,
            degraded: false,
            free_resources: free,
            vms: Vec::new(),
            battery_available: Watts::new(300.0),
            battery_capacity_wh: 840.0,
            battery_capacity_ah: 70.0,
            battery_lifetime_throughput_ah: 35_000.0,
            soc_floor: Soc::EMPTY,
            cutoff_events: 0,
            hours_since_full: 0.0,
        }
    }

    /// A healthy idle node at the given SoC.
    pub(crate) fn plain_node(i: usize, soc: f64) -> NodeView {
        node(i, metrics(0.0, 0.9), soc, (8, 16))
    }

    pub(crate) fn view_of(nodes: Vec<NodeView>) -> SystemView {
        SystemView {
            now: SimInstant::START,
            tod: TimeOfDay::NOON,
            weather: Weather::Sunny,
            solar: Watts::new(500.0),
            nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{metrics, node, view_of as view};
    use super::*;
    use baat_server::ServerPowerModel;
    use baat_workload::{EnergyDemand, PowerDemand, VmId};

    fn class() -> DemandClass {
        DemandClass {
            power: PowerDemand::Large,
            energy: EnergyDemand::More,
        }
    }

    #[test]
    fn software_testing_classifies_large_more() {
        let c = classify_workload(
            WorkloadKind::SoftwareTesting,
            &ServerPowerModel::prototype(),
        );
        assert_eq!(c.power, PowerDemand::Large);
        assert_eq!(c.energy, EnergyDemand::More);
    }

    #[test]
    fn wordcount_is_not_energy_hungry() {
        let c = classify_workload(WorkloadKind::WordCount, &ServerPowerModel::prototype());
        assert_eq!(c.energy, EnergyDemand::Less);
    }

    #[test]
    fn ranking_prefers_least_used_battery() {
        let v = view(vec![
            node(0, metrics(200.0, 0.3), 0.9, (8, 16)),
            node(1, metrics(10.0, 0.9), 0.9, (8, 16)),
            node(2, metrics(100.0, 0.5), 0.9, (8, 16)),
        ]);
        assert_eq!(rank_by_weighted_aging(&v, class()), vec![1, 2, 0]);
    }

    #[test]
    fn migration_target_skips_source_and_unfit_nodes() {
        let v = view(vec![
            node(0, metrics(200.0, 0.2), 0.2, (8, 16)), // source, stressed
            node(1, metrics(5.0, 0.9), 0.9, (1, 2)),    // best battery, no room
            node(2, metrics(50.0, 0.8), 0.8, (8, 16)),  // viable
        ]);
        let target = best_migration_target(&v, 0, WorkloadKind::KMeans, class(), 0.6).unwrap();
        assert_eq!(target, 2);
    }

    #[test]
    fn migration_target_requires_charged_battery() {
        let v = view(vec![
            node(0, metrics(200.0, 0.2), 0.2, (8, 16)),
            node(1, metrics(5.0, 0.9), 0.3, (8, 16)), // too discharged
        ]);
        assert_eq!(
            best_migration_target(&v, 0, WorkloadKind::KMeans, class(), 0.6),
            None
        );
    }

    #[test]
    fn heaviest_movable_vm_skips_services() {
        let mut n = node(0, metrics(0.0, 0.9), 0.9, (0, 0));
        n.vms = vec![
            VmView {
                id: VmId(1),
                kind: WorkloadKind::WebServing,
                state: VmState::Running,
                progress: 0.2,
            },
            VmView {
                id: VmId(2),
                kind: WorkloadKind::WordCount,
                state: VmState::Running,
                progress: 0.1,
            },
            VmView {
                id: VmId(3),
                kind: WorkloadKind::SoftwareTesting,
                state: VmState::Paused,
                progress: 0.5,
            },
        ];
        let vm = heaviest_movable_vm(&n).unwrap();
        assert_eq!(vm.id, VmId(2), "services and paused VMs are not movable");
    }

    #[test]
    fn no_movable_vm_on_empty_node() {
        let n = node(0, metrics(0.0, 0.9), 0.9, (8, 16));
        assert!(heaviest_movable_vm(&n).is_none());
    }
}
