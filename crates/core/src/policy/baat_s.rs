//! BAAT-s (paper Table 4): "only use aging-aware CPU frequency throttling
//! to slow down battery aging" — the Fig 9 slowdown loop.
//!
//! Every control interval the policy checks each node whose battery has
//! fallen below the deep-discharge threshold. If the window's deep
//! discharge time (DDT) or discharge rate (DR) exceeds its threshold, the
//! node's server is throttled one DVFS step to cut demand and "promote
//! the chances of battery charging to a higher SoC when the intermittent
//! power supply becomes sufficient again". Once the battery recovers, the
//! throttle is released one step per interval.
//!
//! Unlike full BAAT, BAAT-s never migrates VMs ("a passive solution [that]
//! leads to workload performance degradation", §VI.B) and places new
//! workloads without battery awareness.

use baat_obs::{Counter, Obs};
use baat_sim::{Action, ControlCtx, PlacementSpec, Policy, SystemView};
use baat_units::Soc;
use baat_workload::WorkloadKind;

/// Thresholds of the Fig 9 slowdown check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownThresholds {
    /// SoC below which the policy starts watching a node (the paper's
    /// 40 % deep-discharge line; planned aging substitutes
    /// `1 − DoD_goal`).
    pub deep_soc: Soc,
    /// Window deep-discharge-time fraction that triggers action.
    pub ddt: f64,
    /// Window mean discharge C-rate that triggers action.
    pub dr_c_rate: f64,
    /// SoC at which the throttle is released.
    pub recover_soc: Soc,
}

impl Default for SlowdownThresholds {
    fn default() -> Self {
        Self {
            deep_soc: Soc::DEEP_DISCHARGE_THRESHOLD,
            ddt: 0.04,
            dr_c_rate: 0.15,
            recover_soc: Soc::saturating(0.48),
        }
    }
}

impl SlowdownThresholds {
    /// `true` if the node's window metrics demand a slowdown.
    pub fn triggered(&self, soc: Soc, window_ddt: f64, window_dr: f64) -> bool {
        soc < self.deep_soc && (window_ddt > self.ddt || window_dr > self.dr_c_rate)
    }
}

/// Control intervals between successive throttle steps: the paper calls
/// BAAT-s "a passive solution"; its reaction is deliberately sluggish.
const THROTTLE_CADENCE: u32 = 3;

/// Per-rule decision counters for BAAT-s, inert unless attached to an
/// enabled [`Obs`].
#[derive(Debug, Clone, Default)]
struct BaatSCounters {
    /// Fig 9 slowdown triggers that produced a throttle step.
    throttles: Counter,
    /// Recovery steps releasing a throttle.
    releases: Counter,
}

/// The slowdown-only policy.
#[derive(Debug, Clone)]
pub struct BaatS {
    thresholds: SlowdownThresholds,
    since_throttle: u32,
    counters: BaatSCounters,
}

impl Default for BaatS {
    fn default() -> Self {
        Self {
            thresholds: SlowdownThresholds::default(),
            since_throttle: THROTTLE_CADENCE,
            counters: BaatSCounters::default(),
        }
    }
}

impl BaatS {
    /// Creates the policy with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the policy with custom thresholds (used by the Fig 16
    /// threshold sweep).
    pub fn with_thresholds(thresholds: SlowdownThresholds) -> Self {
        Self {
            thresholds,
            since_throttle: THROTTLE_CADENCE,
            counters: BaatSCounters::default(),
        }
    }

    /// Attaches per-rule decision counters (`policy.baat_s.*`) to `obs`.
    /// Counting never changes what the policy decides.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.counters = BaatSCounters {
            throttles: obs.counter("policy.baat_s.throttles"),
            releases: obs.counter("policy.baat_s.releases"),
        };
    }

    /// The active thresholds.
    pub fn thresholds(&self) -> SlowdownThresholds {
        self.thresholds
    }
}

impl Policy for BaatS {
    fn name(&self) -> &'static str {
        "BAAT-s"
    }

    fn control(&mut self, view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        let mut actions = Vec::new();
        let may_throttle = self.since_throttle >= THROTTLE_CADENCE;
        let mut throttled = false;
        for node in &view.nodes {
            if !node.online {
                continue;
            }
            let ddt = node.window_metrics.ddt.value();
            let dr = node.window_metrics.dr.mean_c_rate;
            if self.thresholds.triggered(node.soc, ddt, dr) {
                if may_throttle {
                    if let Some(slower) = node.dvfs.slower() {
                        self.counters.throttles.inc();
                        actions.push(Action::SetDvfs {
                            node: node.node,
                            level: slower,
                        });
                        throttled = true;
                    }
                }
            } else if node.soc >= self.thresholds.recover_soc {
                if let Some(faster) = node.dvfs.faster() {
                    self.counters.releases.inc();
                    actions.push(Action::SetDvfs {
                        node: node.node,
                        level: faster,
                    });
                }
            }
        }
        if throttled {
            self.since_throttle = 0;
        } else {
            self.since_throttle += 1;
        }
        actions
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        // Battery-unaware, like e-Buff: the scheme only throttles.
        (0..view.nodes.len()).collect()
    }

    fn placement_spec(&self) -> PlacementSpec {
        PlacementSpec::FirstFit
    }

    fn save_state(&self) -> Vec<u64> {
        vec![u64::from(self.since_throttle)]
    }

    fn load_state(&mut self, state: &[u64]) {
        if let Some(&since) = state.first() {
            self.since_throttle = since as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::common::tests_support::{node, plain_node, view_of};
    use baat_metrics::{AgingMetrics, BatteryRatings, DischargeRate, PartialCycling};
    use baat_server::DvfsLevel;
    use baat_units::{AmpHours, Fraction};

    fn stressed_metrics(ddt: f64, dr: f64) -> AgingMetrics {
        AgingMetrics {
            nat: 0.1,
            cf: Some(0.9),
            pc: PartialCycling {
                share_by_range: [0.0, 0.0, 0.0, 1.0],
            },
            ddt: Fraction::saturating(ddt),
            dr: DischargeRate {
                peak_c_rate: dr,
                mean_c_rate: dr,
            },
        }
    }

    #[allow(dead_code)]
    fn ratings() -> BatteryRatings {
        BatteryRatings {
            capacity: AmpHours::new(35.0),
            lifetime_throughput: AmpHours::new(17_500.0),
        }
    }

    #[test]
    fn throttles_deep_discharged_high_ddt_node() {
        let mut p = BaatS::new();
        let mut n = node(0, stressed_metrics(0.3, 0.1), 0.3, (8, 16));
        n.window_metrics = stressed_metrics(0.3, 0.1);
        let v = view_of(vec![n, plain_node(1, 0.9)]);
        let actions = p.control(&v, &ControlCtx::bootstrap());
        assert_eq!(
            actions,
            vec![Action::SetDvfs {
                node: 0,
                level: DvfsLevel::P1
            }]
        );
    }

    #[test]
    fn high_dr_alone_also_triggers() {
        let mut p = BaatS::new();
        let mut n = node(0, stressed_metrics(0.0, 0.5), 0.3, (8, 16));
        n.window_metrics = stressed_metrics(0.0, 0.5);
        let v = view_of(vec![n]);
        assert!(!p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }

    #[test]
    fn healthy_deep_node_is_left_alone() {
        // Below 40 % SoC but neither DDT nor DR over threshold.
        let mut p = BaatS::new();
        let mut n = node(0, stressed_metrics(0.02, 0.1), 0.3, (8, 16));
        n.window_metrics = stressed_metrics(0.02, 0.1);
        let v = view_of(vec![n]);
        assert!(p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }

    #[test]
    fn recovery_releases_throttle_stepwise() {
        let mut p = BaatS::new();
        let mut n = plain_node(0, 0.8);
        n.dvfs = DvfsLevel::P3;
        let v = view_of(vec![n]);
        let actions = p.control(&v, &ControlCtx::bootstrap());
        assert_eq!(
            actions,
            vec![Action::SetDvfs {
                node: 0,
                level: DvfsLevel::P2
            }]
        );
    }

    #[test]
    fn mid_band_is_hysteresis_no_action() {
        // Between deep (40 %) and recover (48 %): hold the level.
        let mut p = BaatS::new();
        let mut n = plain_node(0, 0.44);
        n.dvfs = DvfsLevel::P2;
        let v = view_of(vec![n]);
        assert!(p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }

    #[test]
    fn offline_nodes_ignored() {
        let mut p = BaatS::new();
        let mut n = node(0, stressed_metrics(0.5, 0.5), 0.1, (8, 16));
        n.window_metrics = stressed_metrics(0.5, 0.5);
        n.online = false;
        let v = view_of(vec![n]);
        assert!(p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }

    #[test]
    fn placement_is_battery_unaware() {
        let mut p = BaatS::new();
        let v = view_of(vec![plain_node(0, 0.1), plain_node(1, 0.9)]);
        assert_eq!(p.placement_order(WorkloadKind::KMeans, &v), vec![0, 1]);
    }
}
