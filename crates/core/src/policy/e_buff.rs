//! The e-Buff baseline (paper Table 4): "aggressively use battery as the
//! green energy buffer to manage supply/load power variability".
//!
//! Modeled on the battery-as-energy-buffer designs of [4, 7]: batteries
//! bridge every supply/demand gap, placement is battery-unaware
//! first-fit, and no throttling or migration ever protects a battery. The
//! engine's default routing is exactly this aggressive usage, so e-Buff
//! issues no actions.

use baat_sim::{Action, ControlCtx, PlacementSpec, Policy, SystemView};
use baat_workload::WorkloadKind;

/// The aggressive green-energy-buffer baseline.
#[derive(Debug, Clone, Default)]
pub struct EBuff;

impl EBuff {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Policy for EBuff {
    fn name(&self) -> &'static str {
        "e-Buff"
    }

    fn control(&mut self, _view: &SystemView, _ctx: &ControlCtx<'_>) -> Vec<Action> {
        Vec::new()
    }

    fn placement_order(&mut self, _kind: WorkloadKind, view: &SystemView) -> Vec<usize> {
        // Battery-unaware first-fit by index.
        (0..view.nodes.len()).collect()
    }

    fn placement_spec(&self) -> PlacementSpec {
        PlacementSpec::FirstFit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::common::tests_support::{plain_node, view_of};

    #[test]
    fn never_acts() {
        let mut p = EBuff::new();
        let v = view_of(vec![plain_node(0, 0.1), plain_node(1, 0.9)]);
        assert!(p.control(&v, &ControlCtx::bootstrap()).is_empty());
    }

    #[test]
    fn placement_is_index_order_regardless_of_soc() {
        let mut p = EBuff::new();
        let v = view_of(vec![plain_node(0, 0.05), plain_node(1, 1.0)]);
        assert_eq!(
            p.placement_order(WorkloadKind::SoftwareTesting, &v),
            vec![0, 1]
        );
    }
}
