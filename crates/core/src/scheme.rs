//! The Table-4 scheme enumeration.

use baat_obs::Obs;
use baat_sim::Policy;

use crate::policy::{Baat, BaatH, BaatS, EBuff};

/// One of the four battery power-management schemes compared in the
/// paper's evaluation (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Aggressive green-energy-buffer baseline.
    EBuff,
    /// Aging-aware CPU frequency throttling only.
    BaatS,
    /// Aging-aware VM migration (hiding) only.
    BaatH,
    /// Coordinated hiding + slowing down.
    Baat,
}

impl Scheme {
    /// All four schemes in Table 4's order.
    pub const ALL: [Scheme; 4] = [Scheme::EBuff, Scheme::BaatS, Scheme::BaatH, Scheme::Baat];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::EBuff => "e-Buff",
            Scheme::BaatS => "BAAT-s",
            Scheme::BaatH => "BAAT-h",
            Scheme::Baat => "BAAT",
        }
    }

    /// The Table-4 method description.
    pub fn description(self) -> &'static str {
        match self {
            Scheme::EBuff => {
                "aggressively use battery as the green energy buffer to manage \
                 supply/load power variability"
            }
            Scheme::BaatS => {
                "only use aging-aware CPU frequency throttling to slow down battery aging"
            }
            Scheme::BaatH => {
                "only use aging-aware VM migration technique to hide battery aging variation"
            }
            Scheme::Baat => {
                "coordinate hiding and slowing down techniques to dynamically manage \
                 battery aging"
            }
        }
    }

    /// Instantiates the scheme's policy with default configuration.
    pub fn build(self) -> Box<dyn Policy> {
        self.build_observed(&Obs::disabled())
    }

    /// Instantiates the scheme's policy with per-rule decision counters
    /// registered in `obs` (`policy.<scheme>.*`).
    ///
    /// Counting is side-effect-free: the policy decides identically with
    /// observation enabled, disabled, or absent.
    pub fn build_observed(self, obs: &Obs) -> Box<dyn Policy> {
        match self {
            Scheme::EBuff => Box::new(EBuff::new()),
            Scheme::BaatS => {
                let mut p = BaatS::new();
                p.attach_obs(obs);
                Box::new(p)
            }
            Scheme::BaatH => {
                let mut p = BaatH::new();
                p.attach_obs(obs);
                Box::new(p)
            }
            Scheme::Baat => {
                let mut p = Baat::new();
                p.attach_obs(obs);
                Box::new(p)
            }
        }
    }
}

impl core::fmt::Display for Scheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_schemes_with_paper_names() {
        let names: Vec<_> = Scheme::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["e-Buff", "BAAT-s", "BAAT-h", "BAAT"]);
    }

    #[test]
    fn built_policies_report_their_names() {
        for scheme in Scheme::ALL {
            assert_eq!(scheme.build().name(), scheme.name());
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for scheme in Scheme::ALL {
            assert!(!scheme.description().is_empty());
        }
    }
}
