//! Battery lifetime estimation under a management scheme.
//!
//! The paper turns measured aging rates into lifetime claims (Figs 14,
//! 15): we do the same by simulating a representative window of days,
//! measuring the damage accumulated per day, and extrapolating to the
//! end-of-life damage of 1.0 (80 % capacity).

use baat_sim::{run_simulation, SimConfig, SimError, SimReport};
use baat_solar::{Location, Weather};
use baat_units::Fraction;

use crate::scheme::Scheme;

/// Outcome of a lifetime estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeEstimate {
    /// Days until the *worst* battery node reaches end-of-life — the
    /// replacement-driving figure.
    pub worst_days: f64,
    /// Days until an *average* node reaches end-of-life.
    pub mean_days: f64,
    /// Damage accumulated per day by the worst node.
    pub worst_daily_damage: f64,
    /// Mean damage accumulated per day across nodes.
    pub mean_daily_damage: f64,
}

impl LifetimeEstimate {
    /// Derives the estimate from a finished simulation report.
    ///
    /// Returns `None` if the run accumulated no damage (lifetime would be
    /// unbounded).
    pub fn from_report(report: &SimReport) -> Option<Self> {
        let days = report.days as f64;
        if days <= 0.0 || report.nodes.is_empty() {
            return None;
        }
        let worst = report.worst_node()?.damage / days;
        let mean = report.mean_damage() / days;
        if worst <= 0.0 || mean <= 0.0 {
            return None;
        }
        Some(Self {
            worst_days: 1.0 / worst,
            mean_days: 1.0 / mean,
            worst_daily_damage: worst,
            mean_daily_damage: mean,
        })
    }
}

/// Builds a representative weather plan for a site with the given
/// sunshine fraction (paper Fig 14's x-axis).
///
/// The plan is a *deterministic* proportional mixture (largest-remainder
/// apportionment of sunny/cloudy/rainy days, interleaved), so short
/// sweep windows still vary smoothly with the sunshine fraction;
/// stochastic day sequences for long-horizon studies come from
/// [`Location::sample_days`]. The `seed` rotates the interleaving so
/// repeated windows are not identical.
pub fn weather_plan_for_sunshine(sunshine: Fraction, days: usize, seed: u64) -> Vec<Weather> {
    let probs = Location::new("sweep", sunshine).weather_probabilities();
    // Largest-remainder apportionment of the day counts.
    let mut counts: Vec<(Weather, usize, f64)> = probs
        .iter()
        .map(|&(w, p)| {
            let exact = p * days as f64;
            (w, exact.floor() as usize, exact.fract())
        })
        .collect();
    let mut assigned: usize = counts.iter().map(|(_, c, _)| *c).sum();
    while assigned < days {
        let Some(best) = counts.iter_mut().max_by(|a, b| a.2.total_cmp(&b.2)) else {
            break;
        };
        best.1 += 1;
        best.2 = -1.0;
        assigned += 1;
    }
    // Interleave by round-robin over remaining counts, rotated by seed.
    let mut remaining: Vec<(Weather, usize)> = counts.into_iter().map(|(w, c, _)| (w, c)).collect();
    let mut plan = Vec::with_capacity(days);
    let mut idx = seed as usize % 3;
    while plan.len() < days {
        let total: usize = remaining.iter().map(|(_, c)| *c).sum();
        // Pick the class with the largest remaining share, starting from
        // the rotated index for variety.
        let mut pick = None;
        for off in 0..3 {
            let i = (idx + off) % 3;
            if remaining[i].1 * 3 > total {
                pick = Some(i);
                break;
            }
        }
        let fallback = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, c))| *c)
            .map(|(i, _)| i);
        let Some(i) = pick.or(fallback) else { break };
        plan.push(remaining[i].0);
        remaining[i].1 -= 1;
        idx = (idx + 1) % 3;
    }
    plan
}

/// Estimates battery lifetime under a scheme for a given configuration
/// (whose weather plan defines the representative window).
///
/// # Errors
///
/// Returns [`SimError`] if the configuration is rejected.
///
/// # Examples
///
/// ```no_run
/// use baat_core::{estimate_lifetime, Scheme};
/// use baat_sim::SimConfig;
/// use baat_solar::Weather;
///
/// let config = SimConfig::prototype_day(Weather::Cloudy, 42);
/// let est = estimate_lifetime(Scheme::Baat, config)?.unwrap();
/// assert!(est.worst_days > 0.0);
/// # Ok::<(), baat_sim::SimError>(())
/// ```
pub fn estimate_lifetime(
    scheme: Scheme,
    config: SimConfig,
) -> Result<Option<LifetimeEstimate>, SimError> {
    let mut policy = scheme.build();
    let report = run_simulation(config, &mut policy)?;
    Ok(LifetimeEstimate::from_report(&report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_units::SimDuration;

    fn quick_config(plan: Vec<Weather>) -> SimConfig {
        let mut b = SimConfig::builder();
        b.weather_plan(plan)
            .dt(SimDuration::from_secs(60))
            .sample_every(30)
            .seed(11);
        b.build().unwrap()
    }

    #[test]
    fn lifetime_is_finite_under_cycling() {
        let est = estimate_lifetime(Scheme::EBuff, quick_config(vec![Weather::Cloudy]))
            .unwrap()
            .expect("cycling causes damage");
        assert!(est.worst_days > 0.0 && est.worst_days.is_finite());
        assert!(est.worst_days <= est.mean_days);
    }

    #[test]
    fn sunnier_weather_extends_lifetime() {
        let sunny = estimate_lifetime(Scheme::EBuff, quick_config(vec![Weather::Sunny]))
            .unwrap()
            .unwrap();
        let rainy = estimate_lifetime(Scheme::EBuff, quick_config(vec![Weather::Rainy]))
            .unwrap()
            .unwrap();
        assert!(
            sunny.worst_days > rainy.worst_days,
            "sunny {} vs rainy {}",
            sunny.worst_days,
            rainy.worst_days
        );
    }

    #[test]
    fn weather_plan_respects_sunshine_fraction() {
        let plan = weather_plan_for_sunshine(Fraction::new(0.8).unwrap(), 1000, 3);
        let sunny = plan.iter().filter(|w| **w == Weather::Sunny).count();
        assert!(sunny > 700 && sunny < 900, "sunny days {sunny}");
    }

    #[test]
    fn estimate_from_empty_report_is_none() {
        use baat_sim::{EventLog, Recorder, SimReport};
        let report = SimReport {
            policy: "x",
            days: 1,
            nodes: vec![],
            total_work: 0.0,
            completed_jobs: 0,
            migrations: 0,
            unserved_energy: baat_units::WattHours::ZERO,
            curtailed_energy: baat_units::WattHours::ZERO,
            grid_charge_energy: baat_units::WattHours::ZERO,
            recorder: Recorder::new(),
            events: EventLog::new(),
        };
        assert!(LifetimeEstimate::from_report(&report).is_none());
    }
}
