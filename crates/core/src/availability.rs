//! Availability analysis from the battery-aging perspective (paper §VI.E).
//!
//! "The key aging factor that directly correlates with server availability
//! is deep discharge time (DDT). Prior work has shown that datacenter
//! must leave 2 minutes of reserve capacity in UPS battery for high
//! availability \[42\]." These helpers extract the Fig 18/19 quantities
//! from simulation reports.

use baat_sim::SimReport;
use baat_units::SimDuration;

/// The 2-minute emergency reserve rule from \[42\].
pub const EMERGENCY_RESERVE: SimDuration = SimDuration::from_minutes(2);

/// Per-policy low-SoC exposure summary (Fig 18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowSocSummary {
    /// Worst-node time below 40 % SoC.
    pub worst: SimDuration,
    /// Mean per-node time below 40 % SoC.
    pub mean: SimDuration,
    /// Worst-node time in the most dangerous bin (SoC < 15 %), the
    /// single-point-of-failure window.
    pub worst_critical: SimDuration,
}

impl LowSocSummary {
    /// Extracts the summary from a report.
    pub fn from_report(report: &SimReport) -> Self {
        let worst = report.worst_low_soc_duration();
        let total: u64 = report
            .nodes
            .iter()
            .map(|n| n.deep_discharge_time.as_secs())
            .sum();
        let mean = if report.nodes.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(total / report.nodes.len() as u64)
        };
        Self {
            worst,
            mean,
            worst_critical: worst_critical_duration(report),
        }
    }
}

/// Relative availability improvement of `improved` over `baseline`, based
/// on worst-node low-SoC duration (how the paper states "BAAT could
/// increase battery availability by 47 %").
///
/// Returns `None` when the baseline had no low-SoC exposure.
pub fn availability_improvement(baseline: &SimReport, improved: &SimReport) -> Option<f64> {
    let base = baseline.worst_low_soc_duration().as_secs() as f64;
    if base <= 0.0 {
        return None;
    }
    let new = improved.worst_low_soc_duration().as_secs() as f64;
    Some((base - new) / base)
}

/// Worst-node time in the critical reserve region (SoC < 15 %, Fig 19's
/// SoC1 bin) — the single-point-of-failure exposure §VI.E warns about:
/// below this there is no 2-minute full-power reserve left.
pub fn worst_critical_duration(report: &SimReport) -> SimDuration {
    report
        .nodes
        .iter()
        .map(|n| n.soc_histogram[0])
        .max()
        .unwrap_or(SimDuration::ZERO)
}

/// Relative reduction of worst-node critical (<15 % SoC) exposure — the
/// sharper availability reading of Fig 18.
///
/// Returns `None` when the baseline had no critical exposure.
pub fn critical_improvement(baseline: &SimReport, improved: &SimReport) -> Option<f64> {
    let base = worst_critical_duration(baseline).as_secs() as f64;
    if base <= 0.0 {
        return None;
    }
    let new = worst_critical_duration(improved).as_secs() as f64;
    Some((base - new) / base)
}

/// Normalized time-weighted SoC distribution over the 7 Fig-19 bins,
/// aggregated across nodes. Sums to 1 when any time was observed.
pub fn soc_distribution(report: &SimReport) -> [f64; 7] {
    let agg = report.aggregate_soc_histogram();
    let total: f64 = agg.iter().map(|d| d.as_secs() as f64).sum();
    if total <= 0.0 {
        return [0.0; 7];
    }
    let mut out = [0.0; 7];
    for (o, d) in out.iter_mut().zip(agg.iter()) {
        *o = d.as_secs() as f64 / total;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use baat_battery::AgingBreakdown;
    use baat_metrics::{AgingMetrics, BatteryRatings};
    use baat_sim::{EventLog, NodeReport, Recorder};
    use baat_units::{AmpHours, WattHours};

    fn node(i: usize, deep_secs: u64, critical_secs: u64) -> NodeReport {
        let mut hist = [SimDuration::from_secs(100); 7];
        hist[0] = SimDuration::from_secs(critical_secs);
        NodeReport {
            node: i,
            damage: 0.1,
            damage_breakdown: AgingBreakdown::default(),
            capacity_fraction: 0.98,
            lifetime_metrics: AgingMetrics::from_accumulator(
                &baat_battery::UsageAccumulator::default(),
                &BatteryRatings {
                    capacity: AmpHours::new(35.0),
                    lifetime_throughput: AmpHours::new(17_500.0),
                },
            ),
            soc_histogram: hist,
            deep_discharge_time: SimDuration::from_secs(deep_secs),
            observed: SimDuration::from_hours(10),
            cutoff_events: 0,
            downtime: SimDuration::ZERO,
            full_charge_events: 1,
            round_trip_efficiency: Some(0.8),
            work_done: 1.0,
        }
    }

    fn report(nodes: Vec<NodeReport>) -> SimReport {
        SimReport {
            policy: "t",
            days: 1,
            nodes,
            total_work: 0.0,
            completed_jobs: 0,
            migrations: 0,
            unserved_energy: WattHours::ZERO,
            curtailed_energy: WattHours::ZERO,
            grid_charge_energy: WattHours::ZERO,
            recorder: Recorder::new(),
            events: EventLog::new(),
        }
    }

    #[test]
    fn summary_extracts_worst_and_mean() {
        let r = report(vec![node(0, 600, 50), node(1, 1800, 200)]);
        let s = LowSocSummary::from_report(&r);
        assert_eq!(s.worst, SimDuration::from_secs(1800));
        assert_eq!(s.mean, SimDuration::from_secs(1200));
        assert_eq!(s.worst_critical, SimDuration::from_secs(200));
    }

    #[test]
    fn improvement_matches_paper_arithmetic() {
        let base = report(vec![node(0, 2000, 0)]);
        let improved = report(vec![node(0, 1060, 0)]);
        let gain = availability_improvement(&base, &improved).unwrap();
        assert!((gain - 0.47).abs() < 1e-9);
    }

    #[test]
    fn improvement_none_without_baseline_exposure() {
        let base = report(vec![node(0, 0, 0)]);
        let improved = report(vec![node(0, 0, 0)]);
        assert!(availability_improvement(&base, &improved).is_none());
    }

    #[test]
    fn critical_improvement_uses_the_spof_bin() {
        let base = report(vec![node(0, 2000, 1000), node(1, 100, 10)]);
        let improved = report(vec![node(0, 1900, 100), node(1, 100, 0)]);
        let gain = critical_improvement(&base, &improved).unwrap();
        assert!((gain - 0.9).abs() < 1e-9);
        assert_eq!(worst_critical_duration(&base), SimDuration::from_secs(1000));
    }

    #[test]
    fn distribution_normalizes() {
        let r = report(vec![node(0, 0, 100), node(1, 0, 100)]);
        let dist = soc_distribution(&r);
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(dist[0] > 0.0);
    }

    #[test]
    fn empty_report_distribution_is_zero() {
        let r = report(vec![]);
        assert_eq!(soc_distribution(&r), [0.0; 7]);
    }
}
