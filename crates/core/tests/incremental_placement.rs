//! Bit-identity of the incremental placement engine against the legacy
//! recompute-from-scratch path, for every Table-4 scheme.
//!
//! Each scheme now declares a [`PlacementSpec`] that lets the engine
//! serve its placement order from the incremental `FleetView` ranker
//! instead of calling `placement_order` over a freshly built
//! `SystemView`. [`ScratchPlacement`] masks the spec back to `Custom`,
//! forcing the legacy path on the *same* policy — so a full-run
//! comparison between the two pins the ranker to the recompute path
//! byte for byte, across clean, faulted and pre-aged runs.

use baat_core::{classify_workload, rank_by_weighted_aging, Scheme};
use baat_sim::{
    FaultMix, FaultPlan, PlacementSpec, ScratchPlacement, SimConfig, SimReport, Simulation,
};
use baat_solar::Weather;
use baat_units::SimDuration;
use baat_workload::WorkloadKind;

const SCHEMES: [Scheme; 4] = [Scheme::EBuff, Scheme::BaatS, Scheme::BaatH, Scheme::Baat];

fn coarse_config(weather: Weather, seed: u64, faulted: bool) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(vec![weather])
        .dt(SimDuration::from_secs(120))
        .control_interval(SimDuration::from_secs(600))
        .sample_every(4)
        .seed(seed);
    if faulted {
        b.faults(FaultPlan::generate(seed, 1, 6, 6, &FaultMix::heavy()));
    }
    b.build().expect("config is valid")
}

fn run_fast(scheme: Scheme, config: SimConfig, pre_age: Option<f64>) -> SimReport {
    let mut sim = Simulation::new(config).expect("config valid");
    if let Some(damage) = pre_age {
        sim.pre_age_batteries(damage);
    }
    sim.run(&mut scheme.build()).expect("fast run succeeds")
}

fn run_scratch(scheme: Scheme, config: SimConfig, pre_age: Option<f64>) -> SimReport {
    let mut sim = Simulation::new(config).expect("config valid");
    if let Some(damage) = pre_age {
        sim.pre_age_batteries(damage);
    }
    sim.run(&mut ScratchPlacement(scheme.build()))
        .expect("scratch run succeeds")
}

/// Every scheme, clean cells: two weathers per scheme.
#[test]
fn schemes_match_scratch_on_clean_runs() {
    for scheme in SCHEMES {
        for weather in [Weather::Sunny, Weather::Rainy] {
            let fast = run_fast(scheme, coarse_config(weather, 11, false), None);
            let scratch = run_scratch(scheme, coarse_config(weather, 11, false), None);
            assert_eq!(
                fast, scratch,
                "{scheme:?}/{weather:?}: incremental ranker diverged from scratch"
            );
        }
    }
}

/// Every scheme under a heavy seeded fault plan: host failures, sensor
/// dropouts and charger faults drive degraded flips, shutdowns and
/// restarts through the dirty set mid-run.
#[test]
fn schemes_match_scratch_on_faulted_runs() {
    for scheme in SCHEMES {
        for seed in [7, 23] {
            let fast = run_fast(scheme, coarse_config(Weather::Cloudy, seed, true), None);
            let scratch = run_scratch(scheme, coarse_config(Weather::Cloudy, seed, true), None);
            assert_eq!(
                fast, scratch,
                "{scheme:?}/seed {seed}: faulted incremental run diverged from scratch"
            );
        }
    }
}

/// Pre-aged batteries start the ranker from nonzero damage and distinct
/// per-bank aging trajectories.
#[test]
fn schemes_match_scratch_on_pre_aged_runs() {
    for scheme in SCHEMES {
        let fast = run_fast(scheme, coarse_config(Weather::Cloudy, 5, false), Some(0.55));
        let scratch = run_scratch(scheme, coarse_config(Weather::Cloudy, 5, false), Some(0.55));
        assert_eq!(
            fast, scratch,
            "{scheme:?}: pre-aged incremental run diverged from scratch"
        );
    }
}

/// Rank-level equality at stepped offsets: at several points through a
/// faulted day (including while nodes are degraded), the engine's
/// incremental rank for the weighted-aging and lifetime-NAT specs must
/// equal the legacy order computed from a fresh [`SystemView`].
#[test]
fn incremental_rank_equals_scratch_rank_at_stepped_offsets() {
    let config = coarse_config(Weather::Cloudy, 7, true);
    let server_power = baat_server::ServerPowerModel::prototype();
    let mut sim = Simulation::new(config).expect("config valid");
    let mut policy = Scheme::Baat.build();
    let mut saw_degraded = false;
    for _ in 0..12 {
        sim.run_steps(&mut policy, 60).expect("chunk runs");
        let view = sim.build_view().expect("view builds");
        saw_degraded |= view.nodes.iter().any(|n| n.degraded);
        for kind in [
            WorkloadKind::WebServing,
            WorkloadKind::KMeans,
            WorkloadKind::SoftwareTesting,
            WorkloadKind::NutchIndexing,
        ] {
            let spec = PlacementSpec::WeightedAging { server_power };
            let incremental = sim.placement_rank(spec, kind).expect("rank computes");
            let class = classify_workload(kind, &server_power);
            let scratch = rank_by_weighted_aging(&view, class);
            assert_eq!(incremental, scratch, "weighted rank diverged for {kind:?}");
        }
        let incremental = sim
            .placement_rank(PlacementSpec::LifetimeNat, WorkloadKind::WebServing)
            .expect("rank computes");
        let mut scratch: Vec<usize> = (0..view.nodes.len()).collect();
        scratch.sort_by(|&a, &b| {
            view.nodes[a]
                .lifetime_metrics
                .nat
                .total_cmp(&view.nodes[b].lifetime_metrics.nat)
        });
        assert_eq!(incremental, scratch, "lifetime-NAT rank diverged");
    }
    assert!(
        saw_degraded,
        "the heavy fault plan must degrade at least one node mid-run \
         (otherwise the degraded sort-after rule went unexercised)"
    );
}
