//! Property-based tests for the solar models.

use baat_solar::{ClearSky, CloudProcess, DailySolarTrace, Location, PvArray, Weather};
use baat_testkit::prelude::*;
use baat_units::{Fraction, SimDuration, TimeOfDay, WattHours, Watts};

fn weather_strategy() -> impl Strategy<Value = Weather> {
    prop_oneof![
        Just(Weather::Sunny),
        Just(Weather::Cloudy),
        Just(Weather::Rainy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clear-sky irradiance is always in [0, 1] and zero at night.
    #[test]
    fn irradiance_bounded(secs in 0u32..86_400) {
        let sky = ClearSky::temperate();
        let v = sky.normalized_irradiance(TimeOfDay::from_secs(secs));
        prop_assert!((0.0..=1.0).contains(&v));
        if !(6 * 3600..=20 * 3600).contains(&secs) {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// Cloud attenuation stays in range for any weather and seed.
    #[test]
    fn attenuation_in_range(weather in weather_strategy(), seed in 0u64..1000, steps in 1usize..500) {
        let mut p = CloudProcess::new(weather, seed);
        for _ in 0..steps {
            let a = p.step();
            prop_assert!((0.02..=1.0).contains(&a));
        }
    }

    /// Trace energy is bounded by the array's clear-sky maximum.
    #[test]
    fn trace_energy_bounded(weather in weather_strategy(), seed in 0u64..100) {
        let array = PvArray::sized_for_daily_energy(
            WattHours::from_kwh(8.0),
            Weather::Sunny,
            ClearSky::temperate(),
        ).unwrap();
        let trace = DailySolarTrace::generate(
            &array, weather, SimDuration::from_secs(300), seed,
        ).unwrap();
        let clear_sky_max = array.peak_power().as_f64() * array.sky().peak_hours();
        let total = trace.summary().total.as_f64();
        prop_assert!(total >= 0.0);
        prop_assert!(total <= clear_sky_max * 1.01, "total {total} > max {clear_sky_max}");
    }

    /// Sunnier weather never yields less expected energy.
    #[test]
    fn weather_ordering_by_energy(seed in 0u64..50) {
        let array = PvArray::sized_for_daily_energy(
            WattHours::from_kwh(8.0),
            Weather::Sunny,
            ClearSky::temperate(),
        ).unwrap();
        let total = |w: Weather| -> f64 {
            // Average over a few seeds to smooth transients.
            (0..4)
                .map(|i| {
                    DailySolarTrace::generate(&array, w, SimDuration::from_secs(300), seed * 7 + i)
                        .unwrap()
                        .summary()
                        .total
                        .as_f64()
                })
                .sum::<f64>() / 4.0
        };
        prop_assert!(total(Weather::Sunny) > total(Weather::Rainy));
    }

    /// Weather sampling respects probabilities: over many days the sunny
    /// share converges to the sunshine fraction.
    #[test]
    fn location_sampling_converges(f in 0.1f64..0.9, seed in 0u64..20) {
        let loc = Location::new("p", Fraction::new(f).unwrap());
        let days = loc.sample_days(4000, seed);
        let sunny = days.iter().filter(|w| **w == Weather::Sunny).count() as f64 / 4000.0;
        prop_assert!((sunny - f).abs() < 0.05, "sunny share {sunny} vs fraction {f}");
    }

    /// Array output is monotone in attenuation.
    #[test]
    fn output_monotone_in_attenuation(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        prop_assume!(a < b);
        let array = PvArray::new(Watts::new(1000.0), ClearSky::temperate()).unwrap();
        let noon = TimeOfDay::from_hm(13, 0);
        prop_assert!(array.output(noon, a) <= array.output(noon, b));
    }
}
