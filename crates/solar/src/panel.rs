//! PV array: converts normalized irradiance into electrical power.

use baat_units::{TimeOfDay, WattHours, Watts};

use crate::error::SolarError;
use crate::irradiance::ClearSky;
use crate::weather::Weather;

/// A photovoltaic array characterized by its peak DC output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvArray {
    peak_power: Watts,
    sky: ClearSky,
}

impl PvArray {
    /// Creates an array with the given peak (clear-sky noon) output.
    ///
    /// # Errors
    ///
    /// Returns [`SolarError::InvalidConfig`] if `peak_power` is not
    /// positive and finite.
    pub fn new(peak_power: Watts, sky: ClearSky) -> Result<Self, SolarError> {
        if !(peak_power.as_f64().is_finite() && peak_power.as_f64() > 0.0) {
            return Err(SolarError::InvalidConfig {
                field: "peak_power",
                reason: format!("must be positive and finite, got {peak_power}"),
            });
        }
        Ok(Self { peak_power, sky })
    }

    /// Sizes an array so that one day of the given weather yields
    /// approximately `daily_energy` — how the paper's 8/6/3 kWh budgets
    /// map onto a panel rating.
    ///
    /// # Errors
    ///
    /// Returns [`SolarError::InvalidConfig`] if `daily_energy` is not
    /// positive and finite.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), baat_solar::SolarError> {
    /// use baat_solar::{ClearSky, PvArray, Weather};
    /// use baat_units::WattHours;
    ///
    /// let array = PvArray::sized_for_daily_energy(
    ///     WattHours::from_kwh(8.0),
    ///     Weather::Sunny,
    ///     ClearSky::temperate(),
    /// )?;
    /// assert!(array.peak_power().as_f64() > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sized_for_daily_energy(
        daily_energy: WattHours,
        weather: Weather,
        sky: ClearSky,
    ) -> Result<Self, SolarError> {
        if !(daily_energy.as_f64().is_finite() && daily_energy.as_f64() > 0.0) {
            return Err(SolarError::InvalidConfig {
                field: "daily_energy",
                reason: format!("must be positive and finite, got {daily_energy}"),
            });
        }
        let peak = daily_energy.as_f64() / (sky.peak_hours() * weather.mean_attenuation());
        Self::new(Watts::new(peak), sky)
    }

    /// Peak clear-sky output.
    pub fn peak_power(&self) -> Watts {
        self.peak_power
    }

    /// The clear-sky profile this array sees.
    pub fn sky(&self) -> &ClearSky {
        &self.sky
    }

    /// Instantaneous output at a time of day under the given cloud
    /// attenuation (from
    /// [`CloudProcess::step`](crate::CloudProcess::step)).
    pub fn output(&self, at: TimeOfDay, attenuation: f64) -> Watts {
        debug_assert!((0.0..=1.0).contains(&attenuation), "invalid attenuation");
        self.peak_power * (self.sky.normalized_irradiance(at) * attenuation)
    }

    /// Expected (mean-attenuation) daily energy under the given weather.
    pub fn expected_daily_energy(&self, weather: Weather) -> WattHours {
        WattHours::new(
            self.peak_power.as_f64() * self.sky.peak_hours() * weather.mean_attenuation(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_array_recovers_budget() {
        for w in Weather::ALL {
            let array = PvArray::sized_for_daily_energy(
                WattHours::from_kwh(w.paper_daily_budget_kwh()),
                w,
                ClearSky::temperate(),
            )
            .unwrap();
            let e = array.expected_daily_energy(w);
            assert!((e.as_kwh() - w.paper_daily_budget_kwh()).abs() < 1e-9);
        }
    }

    #[test]
    fn sunny_array_produces_paper_ratios() {
        // One array sized for 8 kWh sunny yields ~6 and ~3 kWh on cloudy
        // and rainy days.
        let array = PvArray::sized_for_daily_energy(
            WattHours::from_kwh(8.0),
            Weather::Sunny,
            ClearSky::temperate(),
        )
        .unwrap();
        assert!((array.expected_daily_energy(Weather::Cloudy).as_kwh() - 6.0).abs() < 1e-9);
        assert!((array.expected_daily_energy(Weather::Rainy).as_kwh() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn output_zero_at_night() {
        let array = PvArray::new(Watts::new(1000.0), ClearSky::temperate()).unwrap();
        assert_eq!(array.output(TimeOfDay::MIDNIGHT, 1.0), Watts::ZERO);
    }

    #[test]
    fn output_scales_with_attenuation() {
        let array = PvArray::new(Watts::new(1000.0), ClearSky::temperate()).unwrap();
        let noon = TimeOfDay::from_hm(13, 0);
        let full = array.output(noon, 1.0);
        let half = array.output(noon, 0.5);
        assert!((half.as_f64() * 2.0 - full.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn invalid_peak_rejected() {
        assert!(PvArray::new(Watts::new(0.0), ClearSky::temperate()).is_err());
        assert!(PvArray::new(Watts::new(f64::NAN), ClearSky::temperate()).is_err());
    }
}
