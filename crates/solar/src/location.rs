//! Geographic solar availability: sunshine fraction and per-day weather
//! sampling.
//!
//! Paper Figs 14 and 17 sweep "sunshine fraction, the percentage of time
//! when sunshine is recorded [41]" across geographic locations. A
//! [`Location`] maps a sunshine fraction onto a daily weather distribution
//! from which seeded day sequences are drawn.

use baat_rng::StdRng;
use baat_units::Fraction;

use crate::weather::Weather;

/// A deployment site characterized by its sunshine fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    name: &'static str,
    sunshine_fraction: Fraction,
}

impl Location {
    /// Creates a location from a sunshine fraction.
    pub fn new(name: &'static str, sunshine_fraction: Fraction) -> Self {
        Self {
            name,
            sunshine_fraction,
        }
    }

    /// Example sites spanning the paper's sweep range, dimmest first.
    pub fn presets() -> Vec<Location> {
        fn frac(v: f64) -> Fraction {
            Fraction::new(v).expect("preset fractions are valid")
        }
        vec![
            Location::new("Seattle", frac(0.43)),
            Location::new("Pittsburgh", frac(0.45)),
            Location::new("Chicago", frac(0.54)),
            Location::new("Atlanta", frac(0.60)),
            Location::new("Miami", frac(0.66)),
            Location::new("Denver", frac(0.69)),
            Location::new("Los Angeles", frac(0.73)),
            Location::new("Phoenix", frac(0.85)),
        ]
    }

    /// Site name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Fraction of daylight time with recorded sunshine.
    pub fn sunshine_fraction(&self) -> Fraction {
        self.sunshine_fraction
    }

    /// Probability of each weather class on a given day.
    ///
    /// Sunny days occur with the sunshine fraction; the remainder splits
    /// 60/40 between cloudy and rainy.
    pub fn weather_probabilities(&self) -> [(Weather, f64); 3] {
        let s = self.sunshine_fraction.value();
        [
            (Weather::Sunny, s),
            (Weather::Cloudy, (1.0 - s) * 0.6),
            (Weather::Rainy, (1.0 - s) * 0.4),
        ]
    }

    /// Expected daily solar energy as a fraction of a pure-sunny site
    /// (weights the paper's 8/6/3 kWh budgets by the weather mix).
    pub fn expected_energy_factor(&self) -> f64 {
        self.weather_probabilities()
            .iter()
            .map(|(w, p)| p * w.paper_daily_budget_kwh() / 8.0)
            .sum()
    }

    /// Draws a deterministic sequence of daily weather for this site.
    pub fn sample_days(&self, days: usize, seed: u64) -> Vec<Weather> {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs = self.weather_probabilities();
        (0..days)
            .map(|_| {
                let x: f64 = rng.random_range(0.0..1.0);
                let mut acc = 0.0;
                for (w, p) in probs {
                    acc += p;
                    if x < acc {
                        return w;
                    }
                }
                Weather::Rainy
            })
            .collect()
    }
}

impl core::fmt::Display for Location {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} ({})", self.name, self.sunshine_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(f: f64) -> Location {
        Location::new("test", Fraction::new(f).unwrap())
    }

    #[test]
    fn probabilities_sum_to_one() {
        for f in [0.0, 0.3, 0.65, 1.0] {
            let total: f64 = site(f).weather_probabilities().iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sunnier_sites_have_more_sunny_days() {
        let dim = site(0.4).sample_days(2000, 7);
        let bright = site(0.8).sample_days(2000, 7);
        let count = |days: &[Weather]| days.iter().filter(|w| **w == Weather::Sunny).count();
        assert!(count(&bright) > count(&dim));
    }

    #[test]
    fn sample_frequency_matches_probability() {
        let loc = site(0.65);
        let days = loc.sample_days(20_000, 3);
        let sunny = days.iter().filter(|w| **w == Weather::Sunny).count() as f64;
        let frac = sunny / days.len() as f64;
        assert!((frac - 0.65).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let loc = site(0.5);
        assert_eq!(loc.sample_days(100, 9), loc.sample_days(100, 9));
    }

    #[test]
    fn energy_factor_monotone_in_sunshine() {
        let mut prev = 0.0;
        for f in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let e = site(f).expected_energy_factor();
            assert!(e > prev || f == 0.0);
            prev = e;
        }
        assert!((site(1.0).expected_energy_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn presets_are_sorted_and_plausible() {
        let presets = Location::presets();
        assert!(presets.len() >= 6);
        for pair in presets.windows(2) {
            assert!(pair[0].sunshine_fraction() <= pair[1].sunshine_fraction());
        }
    }
}
