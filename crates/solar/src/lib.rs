//! Solar irradiance, weather and PV generation models — the renewable
//! supply substrate of the BAAT reproduction.
//!
//! The paper's prototype taps a rooftop PV line whose daily output it
//! classifies as Sunny (8 kWh), Cloudy (6 kWh) or Rainy (3 kWh) (§VI.A).
//! This crate substitutes that physical feed with:
//!
//! * [`ClearSky`] — the half-sine clear-sky diurnal irradiance profile;
//! * [`Weather`] / [`CloudProcess`] — the three paper weather classes with
//!   an AR(1) cloud-transient attenuation process;
//! * [`PvArray`] — converts irradiance into electrical power, sizable to
//!   the paper's daily budgets;
//! * [`DailySolarTrace`] / [`TraceSummary`] — sampled day traces and the
//!   paper's similar-day matching (§VI.B);
//! * [`Location`] — sunshine-fraction geography for the Fig 14/17 sweeps.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), baat_solar::SolarError> {
//! use baat_solar::{ClearSky, DailySolarTrace, PvArray, Weather};
//! use baat_units::{SimDuration, WattHours};
//!
//! let array = PvArray::sized_for_daily_energy(
//!     WattHours::from_kwh(8.0),
//!     Weather::Sunny,
//!     ClearSky::temperate(),
//! )?;
//! let day = DailySolarTrace::generate(&array, Weather::Cloudy, SimDuration::from_secs(60), 42)?;
//! let energy = day.summary().total;
//! assert!(energy.as_kwh() > 3.0 && energy.as_kwh() < 9.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod irradiance;
mod location;
mod panel;
mod trace;
mod weather;

pub use error::SolarError;
pub use irradiance::ClearSky;
pub use location::Location;
pub use panel::PvArray;
pub use trace::{most_similar_day, DailySolarTrace, TraceSummary};
pub use weather::{CloudProcess, Weather};
