//! Error types for solar model configuration.

/// Configuration failure in the solar models.
#[derive(Debug, Clone, PartialEq)]
pub enum SolarError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl core::fmt::Display for SolarError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolarError::InvalidConfig { field, reason } => {
                write!(f, "invalid solar config field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SolarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let err = SolarError::InvalidConfig {
            field: "dt",
            reason: "zero".to_owned(),
        };
        assert!(err.to_string().contains("dt"));
    }
}
