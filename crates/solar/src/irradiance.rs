//! Clear-sky diurnal irradiance profile.
//!
//! Solar input follows the classic half-sine clear-sky shape between
//! sunrise and sunset (Wang & Chow's solar radiation model [41] reduces to
//! this under clear sky at fixed tilt): zero outside daylight, peaking at
//! solar noon.

use baat_units::TimeOfDay;

use crate::error::SolarError;

/// Clear-sky irradiance profile for one site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClearSky {
    sunrise: TimeOfDay,
    sunset: TimeOfDay,
}

impl ClearSky {
    /// Creates a profile with the given sunrise and sunset.
    ///
    /// # Errors
    ///
    /// Returns [`SolarError::InvalidConfig`] if sunset is not after
    /// sunrise.
    pub fn new(sunrise: TimeOfDay, sunset: TimeOfDay) -> Result<Self, SolarError> {
        if sunset <= sunrise {
            return Err(SolarError::InvalidConfig {
                field: "sunset",
                reason: format!("sunset {sunset} must be after sunrise {sunrise}"),
            });
        }
        Ok(Self { sunrise, sunset })
    }

    /// A temperate mid-year default: 06:30 to 19:30.
    pub fn temperate() -> Self {
        Self::new(TimeOfDay::from_hm(6, 30), TimeOfDay::from_hm(19, 30))
            .expect("static times are valid")
    }

    /// Sunrise time.
    pub fn sunrise(&self) -> TimeOfDay {
        self.sunrise
    }

    /// Sunset time.
    pub fn sunset(&self) -> TimeOfDay {
        self.sunset
    }

    /// Day length in hours.
    pub fn day_length_hours(&self) -> f64 {
        f64::from(self.sunset.as_secs() - self.sunrise.as_secs()) / 3600.0
    }

    /// Normalized clear-sky irradiance in `[0, 1]` at a time of day:
    /// `sin(π · (t − sunrise) / daylength)` during daylight, zero at
    /// night.
    ///
    /// # Examples
    ///
    /// ```
    /// use baat_solar::ClearSky;
    /// use baat_units::TimeOfDay;
    ///
    /// let sky = ClearSky::temperate();
    /// assert_eq!(sky.normalized_irradiance(TimeOfDay::MIDNIGHT), 0.0);
    /// assert!(sky.normalized_irradiance(TimeOfDay::from_hm(13, 0)) > 0.9);
    /// ```
    pub fn normalized_irradiance(&self, at: TimeOfDay) -> f64 {
        let t = f64::from(at.as_secs());
        let rise = f64::from(self.sunrise.as_secs());
        let set = f64::from(self.sunset.as_secs());
        if t <= rise || t >= set {
            return 0.0;
        }
        (core::f64::consts::PI * (t - rise) / (set - rise)).sin()
    }

    /// Integral of the normalized profile over the day, in "peak-hours"
    /// (`2/π × daylength` for the half-sine).
    pub fn peak_hours(&self) -> f64 {
        2.0 / core::f64::consts::PI * self.day_length_hours()
    }
}

impl Default for ClearSky {
    fn default() -> Self {
        Self::temperate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_at_night_peak_at_solar_noon() {
        let sky = ClearSky::temperate();
        assert_eq!(sky.normalized_irradiance(TimeOfDay::from_hm(3, 0)), 0.0);
        assert_eq!(sky.normalized_irradiance(TimeOfDay::from_hm(22, 0)), 0.0);
        let noon = sky.normalized_irradiance(TimeOfDay::from_hm(13, 0));
        assert!((noon - 1.0).abs() < 1e-6, "solar noon is 13:00 here");
    }

    #[test]
    fn profile_is_symmetric_about_solar_noon() {
        let sky = ClearSky::temperate();
        let a = sky.normalized_irradiance(TimeOfDay::from_hm(10, 0));
        let b = sky.normalized_irradiance(TimeOfDay::from_hm(16, 0));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn peak_hours_matches_numeric_integral() {
        let sky = ClearSky::temperate();
        let mut integral = 0.0;
        for s in 0..86_400u32 {
            integral += sky.normalized_irradiance(TimeOfDay::from_secs(s)) / 3600.0;
        }
        assert!((integral - sky.peak_hours()).abs() < 0.01);
    }

    #[test]
    fn inverted_times_rejected() {
        let err = ClearSky::new(TimeOfDay::from_hm(19, 0), TimeOfDay::from_hm(6, 0));
        assert!(err.is_err());
    }

    #[test]
    fn day_length_is_thirteen_hours_for_temperate() {
        assert!((ClearSky::temperate().day_length_hours() - 13.0).abs() < 1e-9);
    }
}
