//! Weather conditions and stochastic cloud attenuation.
//!
//! The paper profiles its prototype under three weather classes with daily
//! solar energy budgets of 8 kWh (Sunny), 6 kWh (Cloudy) and 3 kWh (Rainy)
//! (§VI.A, Fig 12). Each class is a mean attenuation of the clear-sky
//! profile plus an AR(1) cloud-transient process whose variance grows with
//! cloud cover.

use baat_rng::StdRng;

/// Daily weather classification, matching paper Fig 12's three scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Weather {
    /// Clear day — the paper's 8 kWh scenario.
    #[default]
    Sunny,
    /// Overcast with broken cloud — the 6 kWh scenario.
    Cloudy,
    /// Heavy overcast/rain — the 3 kWh scenario.
    Rainy,
}

impl Weather {
    /// All weather classes, sunniest first.
    pub const ALL: [Weather; 3] = [Weather::Sunny, Weather::Cloudy, Weather::Rainy];

    /// Mean attenuation of clear-sky irradiance.
    ///
    /// Ratios are calibrated to the paper's 8 : 6 : 3 kWh daily budgets:
    /// 0.95 : 0.7125 : 0.35625.
    pub fn mean_attenuation(self) -> f64 {
        match self {
            Weather::Sunny => 0.95,
            Weather::Cloudy => 0.712_5,
            Weather::Rainy => 0.356_25,
        }
    }

    /// Relative standard deviation of the cloud-transient process.
    pub fn variability(self) -> f64 {
        match self {
            Weather::Sunny => 0.04,
            Weather::Cloudy => 0.30,
            Weather::Rainy => 0.20,
        }
    }

    /// Paper daily energy budget for the prototype's array.
    pub fn paper_daily_budget_kwh(self) -> f64 {
        match self {
            Weather::Sunny => 8.0,
            Weather::Cloudy => 6.0,
            Weather::Rainy => 3.0,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Weather::Sunny => "Sunny",
            Weather::Cloudy => "Cloudy",
            Weather::Rainy => "Rainy",
        }
    }
}

impl core::fmt::Display for Weather {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Seeded AR(1) cloud-transient process producing an attenuation factor
/// in `(0, 1]` per step.
///
/// # Examples
///
/// ```
/// use baat_solar::{CloudProcess, Weather};
///
/// let mut clouds = CloudProcess::new(Weather::Cloudy, 42);
/// let a = clouds.step();
/// assert!((0.0..=1.0).contains(&a));
/// ```
#[derive(Debug, Clone)]
pub struct CloudProcess {
    weather: Weather,
    rng: StdRng,
    state: f64,
    /// AR(1) persistence per step.
    rho: f64,
}

impl CloudProcess {
    /// Creates a process for the given weather with a deterministic seed.
    pub fn new(weather: Weather, seed: u64) -> Self {
        Self {
            weather,
            rng: StdRng::seed_from_u64(seed),
            state: 0.0,
            rho: 0.9,
        }
    }

    /// The weather class this process models.
    pub fn weather(&self) -> Weather {
        self.weather
    }

    /// Checkpoint view: the RNG stream position and the AR(1) state.
    pub fn state(&self) -> ([u64; 4], f64) {
        (self.rng.state(), self.state)
    }

    /// Rebuilds a process at a saved position (see
    /// [`CloudProcess::state`]).
    pub fn restore(weather: Weather, rng_state: [u64; 4], ar_state: f64) -> Self {
        Self {
            weather,
            rng: StdRng::from_state(rng_state),
            state: ar_state,
            rho: 0.9,
        }
    }

    /// Advances the process one step and returns the attenuation factor
    /// in `[0.02, 1]` to multiply into the clear-sky irradiance.
    pub fn step(&mut self) -> f64 {
        // AR(1) with stationary unit variance.
        let eps: f64 = self.rng.random_range(-1.732..1.732); // uniform, var 1
        self.state = self.rho * self.state + (1.0 - self.rho * self.rho).sqrt() * eps;
        let w = self.weather;
        (w.mean_attenuation() * (1.0 + w.variability() * self.state)).clamp(0.02, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attenuation_ratios_match_paper_budgets() {
        let s = Weather::Sunny.mean_attenuation();
        let c = Weather::Cloudy.mean_attenuation();
        let r = Weather::Rainy.mean_attenuation();
        assert!((c / s - 6.0 / 8.0).abs() < 1e-9);
        assert!((r / s - 3.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn cloudy_is_most_variable() {
        assert!(Weather::Cloudy.variability() > Weather::Sunny.variability());
        assert!(Weather::Cloudy.variability() > Weather::Rainy.variability());
    }

    #[test]
    fn process_is_deterministic_per_seed() {
        let mut a = CloudProcess::new(Weather::Cloudy, 9);
        let mut b = CloudProcess::new(Weather::Cloudy, 9);
        for _ in 0..100 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn long_run_mean_approaches_weather_mean() {
        for w in Weather::ALL {
            let mut p = CloudProcess::new(w, 1234);
            let n = 50_000;
            let sum: f64 = (0..n).map(|_| p.step()).sum();
            let mean = sum / f64::from(n);
            assert!(
                (mean - w.mean_attenuation()).abs() < 0.03,
                "{w}: mean {mean} vs {}",
                w.mean_attenuation()
            );
        }
    }

    #[test]
    fn attenuation_always_in_range() {
        let mut p = CloudProcess::new(Weather::Rainy, 7);
        for _ in 0..10_000 {
            let a = p.step();
            assert!((0.02..=1.0).contains(&a), "attenuation {a}");
        }
    }

    #[test]
    fn transients_are_persistent_not_white() {
        // AR(1) with rho 0.9: successive samples should correlate.
        let mut p = CloudProcess::new(Weather::Cloudy, 5);
        let xs: Vec<f64> = (0..10_000).map(|_| p.step()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let cov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>();
        let autocorr = cov / var;
        assert!(autocorr > 0.6, "autocorrelation {autocorr}");
    }
}
