//! Daily solar power traces and the paper's similar-day matching.
//!
//! The paper compares its four policies on *matched* solar days: "we run
//! our experiments multiple days and record all the logs … we are able to
//! find the most similar solar generation scenarios across the multi-groups
//! of experiment logs" (§VI.B), comparing per-day maxima, minima, averages
//! and total energy. [`TraceSummary::similarity`] reproduces that matching
//! criterion.

use baat_units::{SimDuration, TimeOfDay, WattHours, Watts};

use crate::error::SolarError;
use crate::panel::PvArray;
use crate::weather::{CloudProcess, Weather};

/// A sampled one-day solar power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DailySolarTrace {
    weather: Weather,
    dt: SimDuration,
    samples: Vec<Watts>,
}

impl DailySolarTrace {
    /// Generates a seeded one-day trace for the given array and weather at
    /// resolution `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`SolarError::InvalidConfig`] if `dt` is zero or longer
    /// than a day.
    pub fn generate(
        array: &PvArray,
        weather: Weather,
        dt: SimDuration,
        seed: u64,
    ) -> Result<Self, SolarError> {
        if dt.is_zero() || dt.as_secs() > 86_400 {
            return Err(SolarError::InvalidConfig {
                field: "dt",
                reason: format!("step must be in (0, 1 day], got {dt}"),
            });
        }
        let mut clouds = CloudProcess::new(weather, seed);
        let steps = 86_400 / dt.as_secs();
        let samples = (0..steps)
            .map(|i| {
                let tod = TimeOfDay::from_secs((i * dt.as_secs()) as u32);
                array.output(tod, clouds.step())
            })
            .collect();
        Ok(Self {
            weather,
            dt,
            samples,
        })
    }

    /// The weather class the trace was generated under.
    pub fn weather(&self) -> Weather {
        self.weather
    }

    /// Sample resolution.
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// Power at a time of day (constant within each step).
    pub fn power_at(&self, at: TimeOfDay) -> Watts {
        let idx = (u64::from(at.as_secs()) / self.dt.as_secs()) as usize;
        self.samples.get(idx).copied().unwrap_or(Watts::ZERO)
    }

    /// Iterates over the samples in time order.
    pub fn iter(&self) -> impl Iterator<Item = Watts> + '_ {
        self.samples.iter().copied()
    }

    /// Number of samples in the trace.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Summary statistics (the paper's matching features).
    pub fn summary(&self) -> TraceSummary {
        let mut max = Watts::ZERO;
        let mut min_daylight = Watts::new(f64::INFINITY);
        let mut sum = 0.0;
        let mut daylight = 0usize;
        for &p in &self.samples {
            max = max.max(p);
            if p.as_f64() > 0.0 {
                min_daylight = min_daylight.min(p);
                daylight += 1;
            }
            sum += p.as_f64();
        }
        if daylight == 0 {
            min_daylight = Watts::ZERO;
        }
        let mean = if self.samples.is_empty() {
            Watts::ZERO
        } else {
            Watts::new(sum / self.samples.len() as f64)
        };
        TraceSummary {
            max,
            min_daylight,
            mean,
            total: WattHours::new(sum * self.dt.as_hours()),
        }
    }
}

/// Per-day solar statistics used to match experiment days (§VI.B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Maximum instantaneous output.
    pub max: Watts,
    /// Minimum output during daylight.
    pub min_daylight: Watts,
    /// Mean output over the whole day.
    pub mean: Watts,
    /// Total generated energy.
    pub total: WattHours,
}

impl TraceSummary {
    /// Similarity distance between two days: the mean relative difference
    /// over (max, mean, total). Zero for identical days; smaller is more
    /// similar.
    pub fn similarity(&self, other: &TraceSummary) -> f64 {
        fn rel(a: f64, b: f64) -> f64 {
            let denom = a.abs().max(b.abs()).max(1e-9);
            (a - b).abs() / denom
        }
        (rel(self.max.as_f64(), other.max.as_f64())
            + rel(self.mean.as_f64(), other.mean.as_f64())
            + rel(self.total.as_f64(), other.total.as_f64()))
            / 3.0
    }
}

/// Finds the index of the candidate day most similar to `target`, per the
/// paper's log-matching methodology. Returns `None` if `candidates` is
/// empty.
pub fn most_similar_day(target: &TraceSummary, candidates: &[TraceSummary]) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| target.similarity(a).total_cmp(&target.similarity(b)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irradiance::ClearSky;

    fn array() -> PvArray {
        PvArray::sized_for_daily_energy(
            WattHours::from_kwh(8.0),
            Weather::Sunny,
            ClearSky::temperate(),
        )
        .unwrap()
    }

    fn trace(weather: Weather, seed: u64) -> DailySolarTrace {
        DailySolarTrace::generate(&array(), weather, SimDuration::from_secs(60), seed).unwrap()
    }

    #[test]
    fn daily_energy_near_paper_budget() {
        for w in Weather::ALL {
            let totals: Vec<f64> = (0..5)
                .map(|seed| trace(w, seed).summary().total.as_kwh())
                .collect();
            let mean = totals.iter().sum::<f64>() / totals.len() as f64;
            let budget = w.paper_daily_budget_kwh();
            assert!(
                (mean - budget).abs() < budget * 0.15,
                "{w}: mean {mean} kWh vs budget {budget}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = trace(Weather::Cloudy, 3);
        let b = trace(Weather::Cloudy, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn night_samples_are_zero() {
        let t = trace(Weather::Sunny, 1);
        assert_eq!(t.power_at(TimeOfDay::from_hm(2, 0)), Watts::ZERO);
        assert_eq!(t.power_at(TimeOfDay::from_hm(23, 0)), Watts::ZERO);
        assert!(t.power_at(TimeOfDay::from_hm(13, 0)).as_f64() > 0.0);
    }

    #[test]
    fn sunny_day_outproduces_rainy_day() {
        let s = trace(Weather::Sunny, 1).summary();
        let r = trace(Weather::Rainy, 1).summary();
        assert!(s.total > r.total);
        assert!(s.max > r.max);
    }

    #[test]
    fn similarity_is_zero_for_identical_days() {
        let s = trace(Weather::Cloudy, 8).summary();
        assert_eq!(s.similarity(&s), 0.0);
    }

    #[test]
    fn most_similar_day_prefers_same_weather() {
        let target = trace(Weather::Cloudy, 100).summary();
        let candidates = vec![
            trace(Weather::Sunny, 101).summary(),
            trace(Weather::Cloudy, 102).summary(),
            trace(Weather::Rainy, 103).summary(),
        ];
        assert_eq!(most_similar_day(&target, &candidates), Some(1));
    }

    #[test]
    fn most_similar_day_empty_is_none() {
        let target = trace(Weather::Sunny, 1).summary();
        assert_eq!(most_similar_day(&target, &[]), None);
    }

    #[test]
    fn invalid_dt_rejected() {
        assert!(DailySolarTrace::generate(&array(), Weather::Sunny, SimDuration::ZERO, 1).is_err());
    }
}
