//! Integration across the substrate crates without the engine: battery ×
//! charger × switcher × sensors × metrics working as one power chain.

use baat_repro::battery::{Battery, BatteryOp, BatterySpec};
use baat_repro::metrics::{
    dod_goal, weighted_aging, AgingMetrics, BatteryRatings, PlannedAgingInputs,
};
use baat_repro::power::{BatterySensor, Charger, NoiseSpec, PowerSwitcher};
use baat_repro::units::{AmpHours, Celsius, SimDuration, SimInstant, Soc, Watts};
use baat_repro::workload::{DemandClass, EnergyDemand, PowerDemand, WorkloadKind};

/// Runs a node-level power chain for one simulated stretch: a constant
/// server demand against a solar profile, routed through the switcher
/// into battery/charger, sampled by a sensor.
fn run_chain(demand_w: f64, solar_w: f64, hours: u64) -> (Battery, f64 /* unserved Wh */) {
    let mut battery = Battery::new(BatterySpec::prototype());
    let charger = Charger::prototype();
    let switcher = PowerSwitcher::prototype();
    let mut sensor = BatterySensor::new(NoiseSpec::default(), 9);
    let dt = SimDuration::from_minutes(5);
    let mut now = SimInstant::START;
    let mut unserved = 0.0;
    for _ in 0..(hours * 12) {
        let routing = switcher.route(
            Watts::new(demand_w),
            Watts::new(solar_w),
            battery.available_discharge_power(),
            charger.acceptance(battery.soc()),
        );
        let op = if routing.battery_to_load.as_f64() > 0.0 {
            BatteryOp::Discharge(routing.battery_to_load)
        } else {
            let p = charger.charge_power(battery.soc(), routing.surplus_to_charger);
            if p.as_f64() > 0.0 {
                BatteryOp::Charge(p)
            } else {
                BatteryOp::Idle
            }
        };
        let result = battery.step(op, Celsius::new(25.0), now, dt);
        let _ = sensor.sample(&battery, result.terminal_voltage, result.current, now);
        unserved += (routing.unserved * dt).as_f64();
        now += dt;
    }
    (battery, unserved)
}

#[test]
fn solar_surplus_keeps_battery_full_and_load_served() {
    let (battery, unserved) = run_chain(100.0, 250.0, 8);
    assert_eq!(unserved, 0.0);
    assert!(battery.soc().value() > 0.95, "soc {}", battery.soc());
}

#[test]
fn solar_deficit_drains_battery_then_sheds_load() {
    let (battery, unserved) = run_chain(200.0, 40.0, 8);
    assert!(battery.soc().value() < 0.2, "battery should be drained");
    assert!(unserved > 0.0, "eventually demand cannot be met");
    assert!(battery.cutoff_events() > 0);
}

#[test]
fn metrics_reflect_the_usage_pattern() {
    let ratings = BatteryRatings {
        capacity: AmpHours::new(35.0),
        lifetime_throughput: AmpHours::new(17_500.0),
    };
    // Gentle pattern: solar covers most of the demand.
    let (gentle, _) = run_chain(120.0, 100.0, 6);
    // Harsh pattern: battery carries everything.
    let (harsh, _) = run_chain(200.0, 0.0, 6);
    let m_gentle = AgingMetrics::from_accumulator(gentle.telemetry().lifetime(), &ratings);
    let m_harsh = AgingMetrics::from_accumulator(harsh.telemetry().lifetime(), &ratings);
    assert!(m_harsh.nat > m_gentle.nat, "harsh usage moves more Ah");
    assert!(
        m_harsh.ddt.value() > m_gentle.ddt.value(),
        "harsh usage lingers deep"
    );
    assert!(
        m_harsh.dr.mean_c_rate > m_gentle.dr.mean_c_rate,
        "harsh usage draws harder"
    );
    // And the Eq-6 weighted value agrees for a heavy workload class.
    let class = DemandClass {
        power: PowerDemand::Large,
        energy: EnergyDemand::More,
    };
    assert!(weighted_aging(&m_harsh, class) > weighted_aging(&m_gentle, class));
}

#[test]
fn aging_feeds_back_into_deliverable_power() {
    let (mut harsh, _) = run_chain(200.0, 0.0, 6);
    let fresh = Battery::new(BatterySpec::prototype());
    harsh.set_soc(Soc::FULL);
    assert!(
        harsh.available_discharge_power() <= fresh.available_discharge_power(),
        "aged battery cannot out-deliver a fresh one"
    );
    assert!(harsh.internal_resistance() > fresh.internal_resistance());
}

#[test]
fn planned_aging_math_consumes_real_telemetry() {
    let (battery, _) = run_chain(180.0, 30.0, 8);
    let used = AmpHours::new(battery.telemetry().lifetime().ah_discharged.as_f64());
    let goal = dod_goal(&PlannedAgingInputs {
        total_throughput: battery.spec().lifetime_throughput(),
        used_throughput: used,
        capacity: battery.spec().capacity(),
        planned_cycles: 400.0,
    })
    .expect("battery has remaining life");
    assert!(goal.value() > 0.0 && goal.value() <= 0.9);
}

#[test]
fn workload_profiles_classify_against_server_class() {
    use baat_repro::server::ServerPowerModel;
    let server = ServerPowerModel::prototype();
    // The paper's stressor is Large/More; its MapReduce job is short.
    let st = WorkloadKind::SoftwareTesting
        .profile()
        .classify(server.idle(), server.peak());
    assert_eq!(st.power, PowerDemand::Large);
    assert_eq!(st.energy, EnergyDemand::More);
    let wc = WorkloadKind::WordCount
        .profile()
        .classify(server.idle(), server.peak());
    assert_eq!(wc.energy, EnergyDemand::Less);
}
