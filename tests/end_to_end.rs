//! Cross-crate integration tests: the full stack from solar trace to
//! policy decisions to battery aging.

use baat_repro::battery::BatteryModel;
use baat_repro::core::Scheme;
use baat_repro::sim::{availability, run_simulation, SimConfig, Simulation};
use baat_repro::solar::Weather;
use baat_repro::units::{SimDuration, TimeOfDay};

fn quick_config(plan: Vec<Weather>, seed: u64) -> SimConfig {
    let mut b = SimConfig::builder();
    b.weather_plan(plan)
        .dt(SimDuration::from_secs(60))
        .sample_every(15)
        .seed(seed);
    b.build().expect("config is valid")
}

#[test]
fn all_four_schemes_run_one_day() {
    for scheme in Scheme::ALL {
        let report = run_simulation(quick_config(vec![Weather::Cloudy], 3), &mut scheme.build())
            .expect("simulation runs");
        assert_eq!(report.policy, scheme.name());
        assert!(report.total_work > 0.0, "{scheme} did no work");
        assert!(report.completed_jobs > 0, "{scheme} finished no jobs");
        assert_eq!(report.nodes.len(), 6);
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let a = run_simulation(
        quick_config(vec![Weather::Rainy], 9),
        &mut Scheme::Baat.build(),
    )
    .expect("simulation runs");
    let b = run_simulation(
        quick_config(vec![Weather::Rainy], 9),
        &mut Scheme::Baat.build(),
    )
    .expect("simulation runs");
    assert_eq!(a.total_work, b.total_work);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.events.len(), b.events.len());
    for (x, y) in a.nodes.iter().zip(b.nodes.iter()) {
        assert_eq!(x.damage, y.damage);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_simulation(
        quick_config(vec![Weather::Cloudy], 1),
        &mut Scheme::EBuff.build(),
    )
    .expect("simulation runs");
    let b = run_simulation(
        quick_config(vec![Weather::Cloudy], 2),
        &mut Scheme::EBuff.build(),
    )
    .expect("simulation runs");
    assert_ne!(a.total_work, b.total_work);
}

#[test]
fn overnight_grid_charging_restores_batteries() {
    // After a rainy day plus the following night, batteries are full
    // again (the §V.A utility-charging path).
    let config = quick_config(vec![Weather::Rainy, Weather::Sunny], 5);
    let mut sim = Simulation::new(config).expect("config valid");
    let mut policy = Scheme::EBuff.build();
    // Run through day 0 and the night into day 1 at 08:00.
    let steps_to_8am_day1 = (86_400 + 8 * 3600) / 60;
    for _ in 0..steps_to_8am_day1 {
        sim.step(&mut policy).expect("step succeeds");
    }
    for i in 0..6 {
        let soc = sim.batteries().unit(i).expect("node exists").soc();
        assert!(
            soc.value() > 0.95,
            "battery {i} should be recharged overnight, got {soc}"
        );
    }
    let report = sim.into_report("e-Buff").expect("report builds");
    assert!(report.grid_charge_energy.as_f64() > 0.0);
}

#[test]
fn servers_follow_the_operating_window() {
    let report = run_simulation(
        quick_config(vec![Weather::Sunny], 7),
        &mut Scheme::Baat.build(),
    )
    .expect("simulation runs");
    for row in report.recorder.rows() {
        let tod = row.at.time_of_day();
        let in_window = tod >= TimeOfDay::from_hm(8, 30) && tod < TimeOfDay::from_hm(18, 30);
        let power: f64 = row.server_power.iter().map(|p| p.as_f64()).sum();
        if !in_window {
            assert_eq!(power, 0.0, "servers drew power at {tod}");
        }
    }
}

#[test]
fn baat_avoids_downtime_under_scarcity() {
    let ebuff = run_simulation(
        quick_config(vec![Weather::Rainy], 11),
        &mut Scheme::EBuff.build(),
    )
    .expect("simulation runs");
    let baat = run_simulation(
        quick_config(vec![Weather::Rainy], 11),
        &mut Scheme::Baat.build(),
    )
    .expect("simulation runs");
    let downtime = |r: &baat_repro::sim::SimReport| -> u64 {
        r.nodes.iter().map(|n| n.downtime.as_secs()).sum()
    };
    assert!(
        downtime(&baat) < downtime(&ebuff),
        "BAAT {}s vs e-Buff {}s",
        downtime(&baat),
        downtime(&ebuff)
    );
    let a_ebuff = availability(&ebuff, SimDuration::from_hours(10));
    let a_baat = availability(&baat, SimDuration::from_hours(10));
    assert!(a_baat >= a_ebuff);
}

#[test]
fn baat_ages_batteries_slower_than_ebuff() {
    let plan = vec![Weather::Cloudy, Weather::Rainy];
    let ebuff = run_simulation(quick_config(plan.clone(), 13), &mut Scheme::EBuff.build())
        .expect("simulation runs");
    let baat =
        run_simulation(quick_config(plan, 13), &mut Scheme::Baat.build()).expect("simulation runs");
    let worst = |r: &baat_repro::sim::SimReport| r.worst_node().expect("has nodes").damage;
    assert!(
        worst(&baat) < worst(&ebuff),
        "BAAT {} vs e-Buff {}",
        worst(&baat),
        worst(&ebuff)
    );
}

#[test]
fn events_tell_a_consistent_story() {
    use baat_repro::sim::Event;
    let report = run_simulation(
        quick_config(vec![Weather::Rainy], 17),
        &mut Scheme::EBuff.build(),
    )
    .expect("simulation runs");
    let shutdowns = report
        .events
        .count(|e| matches!(e, Event::ServerShutdown { .. }));
    let restarts = report
        .events
        .count(|e| matches!(e, Event::ServerRestart { .. }));
    // Every restart implies a prior shutdown (day-start power-on is not an
    // event).
    assert!(
        restarts <= shutdowns,
        "restarts {restarts} > shutdowns {shutdowns}"
    );
    // Rainy + e-Buff must hit the battery hard enough to shut something
    // down (that is the premise of the whole paper).
    assert!(
        shutdowns > 0,
        "expected power-driven shutdowns on a rainy day"
    );
}

#[test]
fn migration_counts_match_events() {
    use baat_repro::sim::Event;
    let report = run_simulation(
        quick_config(vec![Weather::Cloudy, Weather::Cloudy], 19),
        &mut Scheme::Baat.build(),
    )
    .expect("simulation runs");
    let migration_events = report
        .events
        .count(|e| matches!(e, Event::MigrationStarted { .. }));
    assert_eq!(report.migrations as usize, migration_events);
}

#[test]
fn baat_protects_the_worn_battery_once_its_metrics_show() {
    // A pre-aged bank is invisible to the Eq-6 metrics until usage
    // history accumulates (BAAT senses aging through NAT/CF/PC, exactly
    // as the paper describes — not through an oracle). Over two hard
    // days its deeper relative cycling surfaces in the metrics and BAAT
    // keeps it out of the deep region better than e-Buff does.
    let plan = vec![Weather::Cloudy, Weather::Rainy];
    let run_with = |scheme: Scheme| {
        let mut sim = Simulation::new(quick_config(plan.clone(), 21)).expect("config valid");
        sim.pre_age_bank(0, 0.8).expect("bank exists");
        sim.run(&mut scheme.build()).expect("simulation runs")
    };
    let ebuff = run_with(Scheme::EBuff);
    let baat = run_with(Scheme::Baat);
    // The worn unit's added damage under BAAT must undercut e-Buff's.
    let added = |r: &baat_repro::sim::SimReport| r.nodes[0].damage;
    assert!(
        added(&baat) < added(&ebuff),
        "BAAT should slow the worn bank's aging: {} vs {}",
        added(&baat),
        added(&ebuff)
    );
    // And its deep-discharge exposure likewise.
    assert!(
        baat.nodes[0].deep_discharge_time <= ebuff.nodes[0].deep_discharge_time,
        "BAAT deep time {} vs e-Buff {}",
        baat.nodes[0].deep_discharge_time,
        ebuff.nodes[0].deep_discharge_time
    );
}
